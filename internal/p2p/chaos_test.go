package p2p

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dxml/internal/transport"
	"dxml/internal/transport/chaos"
	"dxml/internal/xmltree"
)

// This file is the fault-tolerance acceptance suite: the differential
// chaos corpus (the headline invariant — under any injected fault
// schedule the live session converges to the fault-free run's verdicts,
// traffic totals, and replica state, or fails with a clean typed
// error), the kill-and-reconnect suffix-resume pin over real sockets,
// and the compaction fallback.

// chaosReconnect is the recovery policy the chaos corpus runs under:
// fast, bounded, and seeded so backoff jitter replays.
func chaosReconnect(seed int64) ReconnectPolicy {
	return ReconnectPolicy{MaxAttempts: 12, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: seed}
}

// chaosLiveRun opens a live session over kernelSide's transport, arms
// the schedule (nil for a fault-free baseline), drives the seeded edit
// script, and returns the verdict sequence, the run's traffic delta,
// and the final extension serialization.
func chaosLiveRun(t *testing.T, served, kernelSide *Network, sched *chaos.Schedule, steps int) ([]bool, Totals, string) {
	t.Helper()
	pre := kernelSide.Stats.Totals()
	lv, err := kernelSide.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	if !lv.Valid() {
		t.Fatal("initial live verdict should be valid")
	}
	if sched != nil {
		sched.Arm(true)
	}
	verdicts := editScript(t, 443, steps, served, lv)
	var ext bytes.Buffer
	lv.Extension().ToXML(&ext)
	return verdicts, diffTotals(kernelSide.Stats.Totals(), pre), ext.String()
}

// TestChaosDifferential is the headline invariant of the
// fault-tolerance layer: the same seeded edit script runs fault-free
// and under seeded fault schedules (drops, delays, truncated snapshot
// chunks, stalled acks, duplicated edits) over both transports, and
// every faulted run converges to the fault-free run — identical verdict
// after every edit, identical extension state, and identical traffic
// totals (recovery is visible only in Totals.Reconnects), because
// suffix resumption re-ships nothing and redelivered edits are skipped
// by version.
func TestChaosDifferential(t *testing.T) {
	const steps = 40
	baseNet := liveSetup(t, 64)
	baseVerdicts, baseTotals, baseExt := chaosLiveRun(t, baseNet, baseNet, nil, steps)

	check := func(t *testing.T, verdicts []bool, totals Totals, ext string) {
		t.Helper()
		if len(verdicts) != len(baseVerdicts) {
			t.Fatalf("verdict sequences diverge in length: %d vs %d", len(verdicts), len(baseVerdicts))
		}
		for i := range verdicts {
			if verdicts[i] != baseVerdicts[i] {
				t.Fatalf("verdict %d differs from fault-free run: %v vs %v", i, verdicts[i], baseVerdicts[i])
			}
		}
		faulted := totals
		faulted.Reconnects = 0
		if faulted != baseTotals {
			t.Fatalf("faulted traffic differs from fault-free run:\nfaulted    %+v\nfault-free %+v", faulted, baseTotals)
		}
		if ext != baseExt {
			t.Fatal("faulted run's final extension differs from the fault-free run")
		}
	}

	reconnects := 0
	// Each seed runs at a different credit window — 1 is the old
	// stop-and-wait wire, 8 and 32 pipeline — and every faulted run must
	// still converge to the same fault-free baseline: the window is
	// invisible to verdicts, traffic totals, and replica state even under
	// drops, stalls, and duplicated acks.
	windows := []int{1, 8, 32}
	for i, seed := range []int64{3, 17, 2026} {
		window := windows[i]
		sched := chaos.Seeded(seed, 0.12, 5).SetDelay(time.Millisecond).Arm(false)
		t.Run("inproc", func(t *testing.T) {
			n := liveSetup(t, 64)
			n.Window = window
			inner, err := n.localSession(nil)
			if err != nil {
				t.Fatal(err)
			}
			n.Transport = chaos.Wrap(inner, sched)
			n.Redial = func() (transport.Session, error) {
				s, err := n.localSession(nil)
				if err != nil {
					return nil, err
				}
				return chaos.Wrap(s, sched), nil
			}
			n.Reconnect = chaosReconnect(seed)
			verdicts, totals, ext := chaosLiveRun(t, n, n, sched, steps)
			check(t, verdicts, totals, ext)
			reconnects += totals.Reconnects
		})
		sched = chaos.Seeded(seed, 0.12, 5).SetDelay(time.Millisecond).Arm(false)
		t.Run("tcp", func(t *testing.T) {
			served := liveSetup(t, 64)
			served.Window = window
			joined, shutdown := serveFederation(t, served)
			defer shutdown()
			joined.Transport = chaos.Wrap(joined.Transport, sched)
			redial := joined.Redial
			joined.Redial = func() (transport.Session, error) {
				s, err := redial()
				if err != nil {
					return nil, err
				}
				return chaos.Wrap(s, sched), nil
			}
			joined.Reconnect = chaosReconnect(seed)
			verdicts, totals, ext := chaosLiveRun(t, served, joined, sched, steps)
			check(t, verdicts, totals, ext)
			reconnects += totals.Reconnects
		})
	}
	if reconnects == 0 {
		t.Fatal("no fault schedule injected a drop: the corpus is not exercising recovery")
	}
}

// TestChaosDuplicateAckNeverDoubleCredits replays cumulative acks on
// the real TCP wire mid-transfer: a scripted schedule retransmits eight
// acks during a centralized validation, and the run must match the
// fault-free run's verdict and traffic totals exactly. A duplicated ack
// carries a count the sender has already credited, so it grants no
// credit, ships no extra chunk, and needs no recovery — Reconnects
// stays zero and not one counter moves.
func TestChaosDuplicateAckNeverDoubleCredits(t *testing.T) {
	build := func() *Network {
		n, typing := eurostatSetup(t)
		n.ChunkSize = 64
		n.Window = 4
		attachValidDocs(t, n, typing, []int{2, 2, 40})
		return n
	}
	baseRemote, shutdown := serveFederation(t, build())
	ok, err := baseRemote.ValidateCentralized()
	shutdown()
	if err != nil || !ok {
		t.Fatalf("fault-free run: ok=%v err=%v", ok, err)
	}
	baseTotals := baseRemote.Stats.Totals()

	dups := make([]chaos.Fault, 8)
	for i := range dups {
		dups[i] = chaos.FaultDuplicate
	}
	sched := chaos.Script(dups...)
	joined, shutdown := serveFederation(t, build())
	defer shutdown()
	joined.Transport = chaos.Wrap(joined.Transport, sched)
	ok, err = joined.ValidateCentralized()
	if err != nil || !ok {
		t.Fatalf("duplicated-ack run: ok=%v err=%v", ok, err)
	}
	if got := joined.Stats.Totals(); got != baseTotals {
		t.Fatalf("duplicated acks perturbed traffic totals:\nfaulted    %+v\nfault-free %+v", got, baseTotals)
	}
	if sched.Consumed() != len(dups) {
		t.Fatalf("only %d/%d scripted ack duplications fired; the corpus is not exercising the credit path", sched.Consumed(), len(dups))
	}
}

// countingListener counts host-to-client payload bytes, so the suffix
// resume's catch-up cost is measured on the real wire, not inferred
// from protocol counters.
type countingListener struct {
	net.Listener
	sent atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, sent: &l.sent}, nil
}

type countingConn struct {
	net.Conn
	sent *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// TestKillAndReconnectResumesBySuffix kills a live TCP session under a
// ~10⁵-node fragment, edits through the outage, and requires recovery
// to catch up by log suffix: every docking point reports
// HealthRecovered with Resumed=true, the outage edits flow after
// recovery, and the bytes on the wire for the entire reconnect are a
// small fraction of what re-shipping the snapshot would cost.
func TestKillAndReconnectResumesBySuffix(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{33000, 2, 1})
	n.ChunkSize = 4096
	for _, fn := range n.Kernel.Funcs() {
		if _, err := n.AttachEditor(fn); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	host := n.ServeTCP(cl)
	defer host.Close()
	joined := NewNetwork(n.Kernel, n.GlobalType)
	joined.ChunkSize = n.ChunkSize
	addrs := map[string]string{}
	for _, fn := range n.Kernel.Funcs() {
		addrs[fn] = host.Addr().String()
	}
	sess, err := joined.DialTCP(addrs)
	if err != nil {
		t.Fatal(err)
	}
	joined.Transport = sess
	joined.Reconnect = ReconnectPolicy{MaxAttempts: 20, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 7}
	lv, err := joined.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	if !lv.Valid() {
		t.Fatal("initial verdict should be valid")
	}
	snapshotBytes := cl.sent.Load()
	ed := n.Peers["f1"].Live
	if _, err := ed.ReplaceSubtree([]int{17000, 1}, xmltree.Leaf("Good")); err != nil {
		t.Fatal(err)
	}
	if up := awaitEditUpdate(t, lv, 0); up.Fn != "f1" || !up.Valid {
		t.Fatalf("pre-kill edit: %+v", up)
	}

	// Kill every connection of the live session, then edit through the
	// outage: the editor just logs, and the kernel peer must catch up.
	preKill := cl.sent.Load()
	sess.Close()
	const outageEdits = 5
	for i := 0; i < outageEdits; i++ {
		if _, err := ed.ReplaceSubtree([]int{i, 1}, xmltree.Leaf("Good")); err != nil {
			t.Fatal(err)
		}
	}
	recovered := map[string]bool{}
	applied := 0
	deadline := time.After(20 * time.Second)
	for applied < outageEdits {
		select {
		case up, ok := <-lv.Updates():
			if !ok {
				t.Fatal("updates closed during recovery")
			}
			if up.Err != nil {
				t.Fatalf("recovery failed: %v", up.Err)
			}
			switch up.Health {
			case HealthRecovered:
				if !up.Resumed {
					t.Fatalf("%s rebuilt from a fresh snapshot; want suffix resume", up.Fn)
				}
				recovered[up.Fn] = true
			case HealthLive:
				if up.Fn != "f1" {
					t.Fatalf("edit update from %s, edited f1", up.Fn)
				}
				if !up.Valid {
					t.Fatalf("catch-up edit %d flipped the verdict: %+v", applied, up)
				}
				applied++
			}
		case <-deadline:
			t.Fatalf("caught up %d/%d edits (recovered: %v)", applied, outageEdits, recovered)
		}
	}
	if !recovered["f1"] {
		t.Fatal("f1 never reported HealthRecovered")
	}
	if stale := lv.Stale(); len(stale) != 0 {
		t.Fatalf("docking points still stale after recovery: %v", stale)
	}
	if joined.Stats.Totals().Reconnects == 0 {
		t.Fatal("no reconnect recorded")
	}
	// The acceptance pin: catch-up cost ≪ snapshot cost. The entire
	// reconnect — hellos, resume handshakes, and the outage edits — must
	// be a sliver of the megabyte the initial snapshots shipped.
	catchUp := cl.sent.Load() - preKill
	if catchUp*10 >= snapshotBytes {
		t.Fatalf("catch-up shipped %d bytes; initial snapshots were %d (want <10%%)", catchUp, snapshotBytes)
	}
	// Post-recovery state matches from-scratch validation.
	extDoc, err := n.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := n.GlobalMachine().ValidateTree(extDoc) == nil
	if lv.Valid() != want {
		t.Fatalf("post-recovery verdict %v, from-scratch %v", lv.Valid(), want)
	}
	frag, err := lv.Fragment("f1")
	if err != nil {
		t.Fatal(err)
	}
	var got, exp bytes.Buffer
	frag.ToXML(&got)
	ed.Tree().ToXML(&exp)
	if got.String() != exp.String() {
		t.Fatal("post-recovery replica differs from the editing site")
	}
}

// TestCompactionFallbackRebuilds: when the editing site compacts its
// log past a dropped subscriber's version, suffix resumption is
// impossible and recovery must fall back to a fresh snapshot cut —
// HealthRecovered with Resumed=false — after which the replica and the
// verdict are exact again.
func TestCompactionFallbackRebuilds(t *testing.T) {
	n := liveSetup(t, 64)
	inner, err := n.localSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	// One scripted drop: it fires on f1's first armed NextEdit call —
	// the one issued right after f1 delivers its first edit.
	sched := chaos.Script(chaos.FaultDrop).Arm(false)
	n.Transport = chaos.Wrap(inner, sched)
	// A slow first backoff leaves room to compact the log before the
	// resubscription happens.
	n.Reconnect = ReconnectPolicy{MaxAttempts: 5, BaseDelay: 300 * time.Millisecond, MaxDelay: 600 * time.Millisecond, Seed: 3}
	lv, err := n.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	ed := n.Peers["f1"].Live
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.MustParse("nationalIndex(country Good value year)")); err != nil {
		t.Fatal(err)
	}
	up := awaitEditUpdate(t, lv, 0)
	if up.Fn != "f1" {
		t.Fatalf("update from %s, edited f1", up.Fn)
	}
	// Arm and trigger the drop with a second edit: the scripted fault
	// fires on f1's next armed NextEdit call — either the one already
	// pending (the edit is then delivered after recovery) or the one
	// right after this edit delivers. Both paths end in HealthStale.
	sched.Arm(true)
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.MustParse("nationalIndex(country Good value year)")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for stale := false; !stale; {
		select {
		case hp, ok := <-lv.Updates():
			if !ok {
				t.Fatal("updates closed early")
			}
			if hp.Err != nil {
				t.Fatalf("terminal error before recovery: %v", hp.Err)
			}
			stale = hp.Health == HealthStale && hp.Fn == "f1"
		case <-deadline:
			t.Fatal("drop never surfaced as HealthStale")
		}
	}
	// During the backoff window: more edits, then compact the whole log
	// so the dropped subscriber's version is gone.
	for i := 0; i < 3; i++ {
		if _, err := ed.ReplaceSubtree([]int{0}, xmltree.MustParse("nationalIndex(country Good value year)")); err != nil {
			t.Fatal(err)
		}
	}
	ed.Compact(ed.Version())
	if ed.Compacted() != ed.Version() {
		t.Fatalf("compaction did not take: first=%d version=%d", ed.Compacted(), ed.Version())
	}
	for {
		select {
		case hp, ok := <-lv.Updates():
			if !ok {
				t.Fatal("updates closed early")
			}
			if hp.Err != nil {
				t.Fatalf("recovery failed: %v", hp.Err)
			}
			if hp.Health != HealthRecovered {
				continue
			}
			if hp.Resumed {
				t.Fatal("recovered by suffix from a compacted log")
			}
		case <-deadline:
			t.Fatal("recovery never completed")
		}
		break
	}
	// The snapshot fallback carried the compacted-away edits: replica
	// and verdict are exact without those edits ever streaming.
	frag, err := lv.Fragment("f1")
	if err != nil {
		t.Fatal(err)
	}
	var got, exp bytes.Buffer
	frag.ToXML(&got)
	ed.Tree().ToXML(&exp)
	if got.String() != exp.String() {
		t.Fatal("rebuilt replica differs from the editing site")
	}
	extDoc, err := n.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := n.GlobalMachine().ValidateTree(extDoc) == nil
	if lv.Valid() != want {
		t.Fatalf("post-rebuild verdict %v, from-scratch %v", lv.Valid(), want)
	}
	// The feed is live again: a fresh edit flows normally.
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.MustParse("nationalIndex(country Good index(value year))")); err != nil {
		t.Fatal(err)
	}
	if up := awaitEditUpdate(t, lv, 1); up.Fn != "f1" || up.Valid != want {
		t.Fatalf("post-rebuild edit: %+v", up)
	}
}

// TestReconnectDisabledSurfacesTypedError: with no Reconnect policy
// (the default), an injected drop is a terminal, *typed* failure — a
// HealthDown update whose error chains to the injector's sentinel — and
// never a hang or a wrong verdict.
func TestReconnectDisabledSurfacesTypedError(t *testing.T) {
	n := liveSetup(t, 64)
	inner, err := n.localSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := chaos.Script(chaos.FaultDrop).Arm(false)
	n.Transport = chaos.Wrap(inner, sched)
	lv, err := n.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	ed := n.Peers["f1"].Live
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.MustParse("nationalIndex(country Good value year)")); err != nil {
		t.Fatal(err)
	}
	awaitEditUpdate(t, lv, 0) // the edit before the drop still applies
	// Arm and trigger: the drop fires on f1's next armed NextEdit call,
	// before or after this edit's delivery depending on scheduling —
	// either way the feed must end HealthDown with the typed sentinel.
	sched.Arm(true)
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.MustParse("nationalIndex(country Good value year)")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case up, ok := <-lv.Updates():
			if !ok {
				t.Fatal("updates closed without a terminal update")
			}
			if up.Health == HealthLive {
				continue // the triggering edit may deliver before the drop
			}
			if up.Health != HealthDown {
				t.Fatalf("expected HealthDown, got %+v", up)
			}
			if !errors.Is(up.Err, chaos.ErrInjected) {
				t.Fatalf("terminal error does not chain to the injected fault: %v", up.Err)
			}
			return
		case <-deadline:
			t.Fatal("injected drop never surfaced")
		}
	}
}

// TestChaosOneShotNeverWrongVerdict runs the one-shot centralized
// protocol under seeded fault schedules on both transports: every run
// must either return the fault-free verdict or fail with an error —
// never return a wrong verdict, panic, or hang.
func TestChaosOneShotNeverWrongVerdict(t *testing.T) {
	build := func(mutate bool) (*Network, func() (transport.Session, error)) {
		n, typing := eurostatSetup(t)
		n.ChunkSize = 64
		attachValidDocs(t, n, typing, []int{2, 2, 2})
		if mutate {
			n.Peers["f2"].Doc = xmltree.MustParse(typing[2].Starts[0] + "(nationalIndex(country))")
		}
		return n, nil
	}
	for _, mutate := range []bool{false, true} {
		base, _ := build(mutate)
		want, err := base.ValidateCentralized()
		if err != nil {
			t.Fatal(err)
		}
		failures := 0
		for seed := int64(1); seed <= 8; seed++ {
			sched := chaos.Seeded(seed, 0.25, 3).SetDelay(time.Millisecond)
			n, _ := build(mutate)
			inner, err := n.localSession(nil)
			if err != nil {
				t.Fatal(err)
			}
			n.Transport = chaos.Wrap(inner, sched)
			ok, err := n.ValidateCentralized()
			if err != nil {
				failures++
				continue // clean failure branch of the invariant
			}
			if ok != want {
				t.Fatalf("seed %d (mutate=%v): verdict %v under faults, fault-free %v", seed, mutate, ok, want)
			}
		}
		t.Logf("mutate=%v: %d/8 seeds failed cleanly, rest matched the fault-free verdict", mutate, failures)
	}
	// And over real sockets, with the listener-level injector (the
	// `dxml serve -chaos` seam): client retries ride over redials here,
	// so each attempt either errors cleanly or matches.
	served, typing := eurostatSetup(t)
	served.ChunkSize = 64
	attachValidDocs(t, served, typing, []int{2, 2, 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := served.ServeTCP(chaos.NewListener(ln, 11))
	defer host.Close()
	joined := NewNetwork(served.Kernel, served.GlobalType)
	joined.ChunkSize = 64
	addrs := map[string]string{}
	for _, fn := range served.Kernel.Funcs() {
		addrs[fn] = host.Addr().String()
	}
	matched, failures := 0, 0
	for attempt := 0; attempt < 8; attempt++ {
		sess, err := joined.DialTCP(addrs)
		if err != nil {
			failures++
			continue
		}
		joined.Transport = sess
		ok, err := joined.ValidateCentralized()
		sess.Close()
		joined.Transport = nil
		if err != nil {
			failures++
			continue
		}
		if !ok {
			t.Fatalf("attempt %d: valid federation rejected under listener chaos", attempt)
		}
		matched++
	}
	if matched == 0 {
		t.Fatalf("no attempt survived listener chaos (%d clean failures); injector too aggressive", failures)
	}
	t.Logf("listener chaos: %d matched, %d failed cleanly", matched, failures)
}
