package p2p

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dxml/internal/xmltree"
)

// liveSetup builds the eurostat federation with an editor on every
// peer.
func liveSetup(t testing.TB, chunk int) *Network {
	t.Helper()
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{2, 3, 1})
	n.ChunkSize = chunk
	for _, fn := range n.Kernel.Funcs() {
		if _, err := n.AttachEditor(fn); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// editScript applies `steps` seeded random edits through the editors of
// `served`, one at a time; after each it waits for the kernel peer's
// update on lv and asserts the maintained verdict against from-scratch
// validation of the materialized extension. It returns the verdict
// sequence.
func editScript(t *testing.T, seed int64, steps int, served *Network, lv *LiveFederation) []bool {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	funcs := served.Kernel.Funcs()
	payloads := []string{
		"nationalIndex(country Good value year)",
		"nationalIndex(country Good index(value year))",
		"index(value year)",
		"zz",
		"nationalIndex(country)", // invalid content
	}
	var verdicts []bool
	for step := 0; step < steps; step++ {
		fn := funcs[r.Intn(len(funcs))]
		ed := served.Peers[fn].Live
		tree := ed.Tree()
		paths := treePaths(tree)
		path := paths[r.Intn(len(paths))]
		var err error
		switch op := r.Intn(3); {
		case op == 0:
			parent := treeAt(tree, path)
			_, err = ed.InsertChild(path, r.Intn(len(parent.Children)+1), xmltree.MustParse(payloads[r.Intn(len(payloads))]))
		case op == 1 && len(path) > 0:
			_, err = ed.DeleteSubtree(path)
		default:
			payload := xmltree.MustParse(payloads[r.Intn(len(payloads))])
			if len(path) == 0 {
				payload = xmltree.New(tree.Label, payload) // keep the local root label
			}
			_, err = ed.ReplaceSubtree(path, payload)
		}
		if err != nil {
			t.Fatalf("step %d (%s): edit: %v", step, fn, err)
		}
		up := awaitEditUpdate(t, lv, step)
		if up.Fn != fn {
			t.Fatalf("step %d: update from %s, edited %s", step, up.Fn, fn)
		}
		// The acceptance pin: maintained verdict == from-scratch
		// validation of the materialized extension.
		ext := map[string]*xmltree.Tree{}
		for _, f := range funcs {
			ext[f] = served.Peers[f].Live.Tree()
		}
		extDoc, eerr := served.Kernel.Extend(ext)
		if eerr != nil {
			t.Fatal(eerr)
		}
		want := served.GlobalMachine().ValidateTree(extDoc) == nil
		if up.Valid != want {
			t.Fatalf("step %d (%s %s): incremental verdict %v, from-scratch %v",
				step, fn, up.Op, up.Valid, want)
		}
		if lv.Valid() != want {
			t.Fatalf("step %d: LiveFederation.Valid() stale", step)
		}
		if up.Revalidated+up.Skipped == 0 {
			t.Fatalf("step %d: empty recheck accounting", step)
		}
		verdicts = append(verdicts, up.Valid)
	}
	return verdicts
}

// awaitEditUpdate waits for the next HealthLive update — an applied
// edit — skipping the health transitions (stale/recovered) a faulted
// run interleaves with them. Any terminal feed error is fatal.
func awaitEditUpdate(t *testing.T, lv *LiveFederation, step int) LiveUpdate {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case up, ok := <-lv.Updates():
			if !ok {
				t.Fatalf("step %d: updates closed early", step)
			}
			if up.Err != nil {
				t.Fatalf("step %d: feed error: %v", step, up.Err)
			}
			if up.Health != HealthLive {
				continue
			}
			return up
		case <-deadline:
			t.Fatalf("step %d: no update for edit", step)
		}
	}
}

func treePaths(t *xmltree.Tree) [][]int {
	var out [][]int
	var rec func(n *xmltree.Tree, path []int)
	rec = func(n *xmltree.Tree, path []int) {
		out = append(out, append([]int(nil), path...))
		for i, c := range n.Children {
			rec(c, append(path, i))
		}
	}
	rec(t, nil)
	return out
}

func treeAt(t *xmltree.Tree, path []int) *xmltree.Tree {
	for _, i := range path {
		t = t.Children[i]
	}
	return t
}

// TestLiveFederationDifferential is the acceptance criterion across
// both transports: the same seeded edit script runs over the in-process
// session and over TCP loopback, and on both wires the verdict after
// every edit equals from-scratch validation — so the two verdict
// sequences are also identical to each other — and the per-edit wire
// and recheck accounting agree byte for byte.
func TestLiveFederationDifferential(t *testing.T) {
	const seed, steps = 443, 60
	run := func(t *testing.T, served, kernelSide *Network) ([]bool, Totals) {
		pre := kernelSide.Stats.Totals()
		lv, err := kernelSide.OpenLive(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer lv.Close()
		if !lv.Valid() {
			t.Fatal("initial live verdict should be valid")
		}
		verdicts := editScript(t, seed, steps, served, lv)
		post := kernelSide.Stats.Totals()
		return verdicts, diffTotals(post, pre)
	}
	var inprocVerdicts, tcpVerdicts []bool
	var inprocTotals, tcpTotals Totals
	t.Run("inproc", func(t *testing.T) {
		n := liveSetup(t, 64)
		inprocVerdicts, inprocTotals = run(t, n, n)
	})
	t.Run("tcp", func(t *testing.T) {
		served := liveSetup(t, 64)
		joined, shutdown := serveFederation(t, served)
		defer shutdown()
		tcpVerdicts, tcpTotals = run(t, served, joined)
	})
	if len(inprocVerdicts) != len(tcpVerdicts) {
		t.Fatalf("verdict sequences diverge in length: %d vs %d", len(inprocVerdicts), len(tcpVerdicts))
	}
	for i := range inprocVerdicts {
		if inprocVerdicts[i] != tcpVerdicts[i] {
			t.Fatalf("verdict %d differs between transports: inproc %v, tcp %v",
				i, inprocVerdicts[i], tcpVerdicts[i])
		}
	}
	if inprocTotals != tcpTotals {
		t.Fatalf("live traffic differs between transports:\ninproc %+v\ntcp    %+v", inprocTotals, tcpTotals)
	}
}

// TestLiveVerdictUpdateReachesEditor: the editing site learns the
// kernel peer's verdict through the verdict-update frames.
func TestLiveVerdictUpdateReachesEditor(t *testing.T) {
	served := liveSetup(t, 0)
	joined, shutdown := serveFederation(t, served)
	defer shutdown()
	lv, err := joined.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	ed := served.Peers["f1"].Live
	if _, err := ed.ReplaceSubtree([]int{0}, xmltree.Leaf("zz")); err != nil {
		t.Fatal(err)
	}
	up := <-lv.Updates()
	if up.Valid {
		t.Fatal("foreign subtree accepted")
	}
	if !up.Changed {
		t.Fatal("verdict transition not flagged")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	valid, err := ed.AwaitVerdict(ctx, up.Version)
	if err != nil {
		t.Fatalf("verdict update never reached the editor: %v", err)
	}
	if valid {
		t.Fatal("editor told the federation is valid after an invalidating edit")
	}
}

// TestLiveEditLocalityOnBigFragment pins the acceptance numbers on a
// 10⁵-node fragment: a single-leaf edit revalidates ≤ 1% of the
// extension (by the revalidator's own accounting) and ships
// O(edit + depth) bytes — here under 200 — on the wire.
func TestLiveEditLocalityOnBigFragment(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{33000, 2, 1}) // f1: ~10⁵ nodes
	for _, fn := range n.Kernel.Funcs() {
		if _, err := n.AttachEditor(fn); err != nil {
			t.Fatal(err)
		}
	}
	lv, err := n.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	if !lv.Valid() {
		t.Fatal("initial verdict should be valid")
	}
	total := lv.inc.TotalBytes()
	if lv.inc.NodeCount() < 100_000 {
		t.Fatalf("fixture too small: %d nodes", lv.inc.NodeCount())
	}
	// Replace one leaf deep inside the big fragment.
	if _, err := n.Peers["f1"].Live.ReplaceSubtree([]int{17000, 1}, xmltree.Leaf("Good")); err != nil {
		t.Fatal(err)
	}
	up := <-lv.Updates()
	if up.Err != nil || !up.Valid {
		t.Fatalf("leaf edit: %+v", up)
	}
	if up.Revalidated*100 > total {
		t.Fatalf("leaf edit revalidated %d of %d bytes (> 1%%)", up.Revalidated, total)
	}
	if up.WireBytes > 200 {
		t.Fatalf("leaf edit shipped %d bytes (want O(edit + depth), < 200)", up.WireBytes)
	}
}

// TestLiveCloseIsClean: closing mid-stream stops the drains without
// wedging editors or leaking updates.
func TestLiveCloseIsClean(t *testing.T) {
	n := liveSetup(t, 0)
	lv, err := n.OpenLive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Peers["f2"].Live.ReplaceSubtree(nil, xmltree.MustParse("root3(nationalIndex(country Good value year))")); err != nil {
		t.Fatal(err)
	}
	<-lv.Updates()
	if err := lv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-lv.Updates(); ok {
		// Drain to the close; any buffered updates are fine, the
		// channel just has to close.
		for range lv.Updates() {
		}
	}
	// Editors keep working after the session is gone.
	if _, err := n.Peers["f2"].Live.DeleteSubtree([]int{0}); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := lv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLiveRequiresEditors: subscribing to a peer without an editor
// fails with a clear error rather than wedging.
func TestOpenLiveRequiresEditors(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{1, 1, 1})
	if _, err := n.OpenLive(context.Background()); err == nil {
		t.Fatal("OpenLive without editors should fail")
	}
}
