package p2p

import (
	"context"
	"math/rand"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/core"
	"dxml/internal/gen"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// eurostatSetup builds the Figure 1 federation: kernel with an averages
// provider and three country bureaus, typed by the Figure 4 perfect
// typing.
func eurostatSetup(t testing.TB) (*Network, core.Typing) {
	t.Helper()
	global := schema.MustParseW3CDTD(schema.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>
	`)
	kernel := axml.MustParseKernel("eurostat(f0 f1 f2 f3)")
	design := &core.DTDDesign{Type: global, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		t.Fatal("Figure 4 perfect typing should exist")
	}
	n := NewNetwork(kernel, global.ToEDTD())
	return n, typing
}

// countryDoc builds a valid national document with k indexes, wrapped
// under the local type's root.
func countryDoc(root string, k int, formatA bool) *xmltree.Tree {
	doc := xmltree.New(root)
	for i := 0; i < k; i++ {
		ni := xmltree.New("nationalIndex", xmltree.Leaf("country"), xmltree.Leaf("Good"))
		if formatA {
			ni.Children = append(ni.Children, xmltree.New("index", xmltree.Leaf("value"), xmltree.Leaf("year")))
		} else {
			ni.Children = append(ni.Children, xmltree.Leaf("value"), xmltree.Leaf("year"))
		}
		doc.Children = append(doc.Children, ni)
	}
	return doc
}

func averagesDoc(root string, goods int) *xmltree.Tree {
	av := xmltree.New("averages")
	for i := 0; i < goods; i++ {
		av.Children = append(av.Children,
			xmltree.Leaf("Good"),
			xmltree.New("index", xmltree.Leaf("value"), xmltree.Leaf("year")))
	}
	return xmltree.New(root, av)
}

func attachValidDocs(t testing.TB, n *Network, typing core.Typing, countrySizes []int) {
	t.Helper()
	funcs := n.Kernel.Funcs()
	for i, f := range funcs {
		root := typing[i].Starts[0]
		var doc *xmltree.Tree
		if i == 0 {
			doc = averagesDoc(root, 2)
		} else {
			doc = countryDoc(root, countrySizes[i-1], i%2 == 0)
		}
		doc.Label = root
		if err := typing[i].Validate(doc); err != nil {
			t.Fatalf("generated doc for %s invalid: %v", f, err)
		}
		if err := n.AddPeer(f, doc, typing[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistributedAgreesWithCentralizedOnValid(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{2, 3, 1})
	dist, err := n.ValidateDistributed()
	if err != nil {
		t.Fatal(err)
	}
	cent, err := n.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if !dist || !cent {
		t.Fatalf("valid federation rejected: dist=%v cent=%v", dist, cent)
	}
}

// TestSoundness: with a local typing, local-valid implies global-valid —
// and with an invalid local document, both protocols reject.
func TestSoundnessAndCompleteness(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{1, 1, 1})
	// Corrupt one country: an index missing its year.
	bad := xmltree.New(typing[2].Starts[0],
		xmltree.New("nationalIndex",
			xmltree.Leaf("country"), xmltree.Leaf("Good"),
			xmltree.New("index", xmltree.Leaf("value"))))
	n.Peers["f2"].Doc = bad
	dist, err := n.ValidateDistributed()
	if err != nil {
		t.Fatal(err)
	}
	cent, err := n.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if dist != cent {
		t.Fatalf("protocols disagree: dist=%v cent=%v", dist, cent)
	}
	if dist {
		t.Fatal("invalid document accepted")
	}
}

// TestProtocolAgreementRandom fuzzes documents (valid and mutated) and
// checks the two protocols always agree when the typing is local — the
// operational meaning of soundness + completeness.
func TestProtocolAgreementRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n, typing := eurostatSetup(t)
		attachValidDocs(t, n, typing, []int{r.Intn(3), r.Intn(3), r.Intn(3)})
		// Randomly mutate one peer's document.
		if r.Intn(2) == 0 {
			f := n.Kernel.Funcs()[r.Intn(4)]
			doc := n.Peers[f].Doc
			mutateTree(r, doc)
		}
		dist, err := n.ValidateDistributed()
		if err != nil {
			t.Fatal(err)
		}
		cent, err := n.ValidateCentralized()
		if err != nil {
			t.Fatal(err)
		}
		if dist != cent {
			mat, _ := n.Materialize()
			t.Fatalf("protocols disagree (dist=%v cent=%v) on %s", dist, cent, mat)
		}
	}
}

func mutateTree(r *rand.Rand, doc *xmltree.Tree) {
	// Collect nodes.
	var nodes []*xmltree.Tree
	doc.Walk(func(n *xmltree.Tree, _ []string) bool {
		nodes = append(nodes, n)
		return true
	})
	n := nodes[r.Intn(len(nodes))]
	switch r.Intn(3) {
	case 0: // drop a child
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
		}
	case 1: // duplicate a child
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children, n.Children[i].Clone())
		}
	default: // relabel a non-root node
		if n != doc {
			n.Label = "zz"
		}
	}
}

// TestTrafficAdvantage: distributed validation ships only verdicts;
// centralized ships full documents. This reproduces the communication
// asymmetry motivating local typings (Remark 4).
func TestTrafficAdvantage(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{50, 50, 50})
	if _, err := n.ValidateDistributed(); err != nil {
		t.Fatal(err)
	}
	_, distBytes := n.Stats.Snapshot()
	n2, typing2 := eurostatSetup(t)
	attachValidDocs(t, n2, typing2, []int{50, 50, 50})
	if _, err := n2.ValidateCentralized(); err != nil {
		t.Fatal(err)
	}
	_, centBytes := n2.Stats.Snapshot()
	if distBytes*10 > centBytes {
		t.Errorf("distributed traffic (%d B) should be ≪ centralized (%d B)", distBytes, centBytes)
	}
}

// TestNonLocalTypingBreaksAgreement: with a sound-but-incomplete typing,
// distributed validation can reject documents that are globally valid
// (false negatives) — completeness is exactly what rules this out.
func TestNonLocalTypingBreaksAgreement(t *testing.T) {
	global := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a | b")
	kernel := axml.MustParseKernel("s(f1)")
	// Sound but incomplete local type: only a.
	restrictive := schema.MustParseDTD(schema.KindNRE, "root r1\nr1 -> a").ToEDTD()
	n := NewNetwork(kernel, global.ToEDTD())
	doc := xmltree.MustParse("r1(b)")
	if err := n.AddPeer("f1", doc, restrictive); err != nil {
		t.Fatal(err)
	}
	dist, err := n.ValidateDistributed()
	if err != nil {
		t.Fatal(err)
	}
	cent, err := n.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if dist || !cent {
		t.Fatalf("expected a false negative: dist=%v cent=%v", dist, cent)
	}
}

// TestCollaborativeEditing: with a local typing, fragment edits are
// admitted/rejected identically by local and centralized validation —
// with a fraction of the traffic (the introduction's WebDAV scenario).
func TestCollaborativeEditing(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{2, 2, 2})
	root2 := typing[2].Starts[0]

	// A valid edit: INSEE switches one index to format B.
	edit := countryDoc(root2, 3, false)
	admitted, prev, err := n.UpdatePeer("f2", edit)
	if err != nil {
		t.Fatal(err)
	}
	if !admitted || prev == nil {
		t.Fatal("valid edit rejected")
	}

	// An invalid edit is rejected locally and leaves the doc untouched.
	bad := xmltree.MustParse(root2 + "(nationalIndex(country))")
	admitted, _, err = n.UpdatePeer("f2", bad)
	if err != nil {
		t.Fatal(err)
	}
	if admitted {
		t.Fatal("invalid edit admitted")
	}
	if n.Peers["f2"].Doc != edit {
		t.Fatal("rejected edit modified the document")
	}
	_, localBytes := n.Stats.Snapshot() // traffic of the two local edits

	// The federation stays globally valid after the admitted edit
	// (soundness).
	if ok, err := n.ValidateCentralized(); err != nil || !ok {
		t.Fatalf("edited federation invalid: %v %v", ok, err)
	}

	// Centralized agrees on both verdicts (but ships everything).
	n2, typing2 := eurostatSetup(t)
	attachValidDocs(t, n2, typing2, []int{2, 2, 2})
	admitted, err = n2.UpdatePeerCentralized("f2", countryDoc(typing2[2].Starts[0], 3, false))
	if err != nil || !admitted {
		t.Fatalf("centralized rejected a valid edit: %v %v", admitted, err)
	}
	admitted, err = n2.UpdatePeerCentralized("f2",
		xmltree.MustParse(typing2[2].Starts[0]+"(nationalIndex(country))"))
	if err != nil || admitted {
		t.Fatalf("centralized admitted an invalid edit: %v %v", admitted, err)
	}
	_, centBytes := n2.Stats.Snapshot()
	if localBytes*10 > centBytes {
		t.Errorf("local edits (%d B) should be ≪ centralized (%d B)", localBytes, centBytes)
	}
}

// TestSampledWorkloadFederation seeds peers with documents drawn from
// their own types by the gen sampler: by soundness, every sampled
// federation must validate under both protocols.
func TestSampledWorkloadFederation(t *testing.T) {
	n, typing := eurostatSetup(t)
	for round := 0; round < 10; round++ {
		for i, f := range n.Kernel.Funcs() {
			s, err := gen.New(typing[i], int64(round*10+i))
			if err != nil {
				t.Fatal(err)
			}
			doc, err := s.Document()
			if err != nil {
				t.Fatal(err)
			}
			if err := n.AddPeer(f, doc, typing[i]); err != nil {
				t.Fatal(err)
			}
		}
		dist, err := n.ValidateDistributed()
		if err != nil {
			t.Fatal(err)
		}
		cent, err := n.ValidateCentralized()
		if err != nil {
			t.Fatal(err)
		}
		if !dist || !cent {
			mat, _ := n.Materialize()
			t.Fatalf("round %d: sampled federation rejected (dist=%v cent=%v): %s",
				round, dist, cent, mat)
		}
	}
}

// TestDistributedShortCircuit: an invalid peer fails the round without
// forcing every verdict onto the wire, and Stats stays consistent (every
// counted message is a delivered verdict of fixed size).
func TestDistributedShortCircuit(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{2000, 2000, 2000})
	n.Peers["f1"].Doc = xmltree.MustParse(typing[1].Starts[0] + "(nationalIndex(country))")
	ok, err := n.ValidateDistributed()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("invalid federation accepted")
	}
	msgs, bytes := n.Stats.Snapshot()
	if msgs > len(n.Kernel.Funcs()) {
		t.Errorf("short-circuited round delivered %d messages for %d peers", msgs, len(n.Kernel.Funcs()))
	}
	if msgs == 0 {
		t.Error("the failing verdict itself must be counted")
	}
	// Every distributed message is a fixed-size verdict frame, never a
	// document.
	if bytes > msgs*4 {
		t.Errorf("verdict round moved %d bytes in %d messages", bytes, msgs)
	}
}

// TestDistributedContextCancel: an externally canceled round reports the
// context error instead of a spurious "valid" verdict.
func TestDistributedContextCancel(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{1, 1, 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, err := n.ValidateDistributedContext(ctx)
	if ok {
		t.Error("canceled round must not report valid")
	}
	if err == nil {
		t.Error("canceled round should surface the context error")
	}
}

// TestCentralizedNeverMaterializes: centralized validation agrees with
// Extend+Validate while accounting document bytes exactly once per
// message (the payload length, not a re-serialization).
func TestCentralizedWireAccounting(t *testing.T) {
	n, typing := eurostatSetup(t)
	attachValidDocs(t, n, typing, []int{3, 1, 2})
	ok, err := n.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid federation rejected")
	}
	msgs, gotBytes := n.Stats.Snapshot()
	if msgs != len(n.Kernel.Funcs()) {
		t.Errorf("centralized round: %d messages, want %d", msgs, len(n.Kernel.Funcs()))
	}
	wantBytes := 0
	for f, p := range n.Peers {
		wantBytes += len(f) + 1 + len(p.Doc.XMLString())
	}
	if gotBytes != wantBytes {
		t.Errorf("centralized bytes = %d, want serialized payload total %d", gotBytes, wantBytes)
	}
}

func TestUpdatePeerUnknown(t *testing.T) {
	n, _ := eurostatSetup(t)
	if _, _, err := n.UpdatePeer("f9", xmltree.Leaf("x")); err == nil {
		t.Error("unknown peer accepted")
	}
	if _, err := n.UpdatePeerCentralized("f9", xmltree.Leaf("x")); err == nil {
		t.Error("unknown peer accepted")
	}
}

func TestAddPeerErrors(t *testing.T) {
	global := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a")
	kernel := axml.MustParseKernel("s(f1)")
	n := NewNetwork(kernel, global.ToEDTD())
	if err := n.AddPeer("f9", xmltree.Leaf("r"), global.ToEDTD()); err == nil {
		t.Error("unknown docking point accepted")
	}
	if _, err := n.ValidateDistributed(); err == nil {
		t.Error("missing peer should fail")
	}
	if _, err := n.ValidateCentralized(); err == nil {
		t.Error("missing peer should fail")
	}
}

// TestChunkSizeInvariance is the acceptance criterion of the chunked
// wire: on a differential corpus of valid and mutated federations, the
// verdicts of both protocols and the Stats message counts are identical
// for chunk sizes {16 B, 4 KiB, ∞}. Only delivered bytes may differ, and
// only on rejected transfers (mid-transfer rejection), where smaller
// chunks save at least as many bytes as larger ones.
func TestChunkSizeInvariance(t *testing.T) {
	chunks := []int{16, 4096, Unchunked}
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 25; trial++ {
		sizes := []int{r.Intn(4), r.Intn(4), r.Intn(4)}
		mutateAt := -1
		if trial%2 == 1 {
			mutateAt = r.Intn(4)
		}
		type obs struct {
			dist, cent           bool
			distMsgs, centMsgs   int
			centBytes, centSaved int
		}
		var got []obs
		for _, chunk := range chunks {
			n, typing := eurostatSetup(t)
			n.ChunkSize = chunk
			attachValidDocs(t, n, typing, sizes)
			if mutateAt >= 0 {
				// Same seed per chunk size => identical mutation.
				mr := rand.New(rand.NewSource(int64(trial)))
				mutateTree(mr, n.Peers[n.Kernel.Funcs()[mutateAt]].Doc)
			}
			dist, err := n.ValidateDistributed()
			if err != nil {
				t.Fatal(err)
			}
			distMsgs, _ := n.Stats.Snapshot()
			pre := n.Stats.Totals()
			cent, err := n.ValidateCentralized()
			if err != nil {
				t.Fatal(err)
			}
			tot := n.Stats.Totals()
			got = append(got, obs{
				dist: dist, cent: cent,
				distMsgs:  distMsgs,
				centMsgs:  tot.Messages - pre.Messages,
				centBytes: tot.Bytes - pre.Bytes,
				centSaved: tot.BytesSaved - pre.BytesSaved,
			})
		}
		base := got[0]
		for i, o := range got {
			if o.dist != base.dist || o.cent != base.cent {
				t.Fatalf("trial %d: verdicts vary with chunk size: %+v", trial, got)
			}
			if o.centMsgs != base.centMsgs {
				t.Fatalf("trial %d: centralized message counts vary with chunk size: %+v", trial, got)
			}
			// The distributed round ships only verdicts, so the chunk
			// knob cannot touch it; but its short-circuit makes the
			// count scheduling-dependent on invalid federations, so
			// exact equality is only required on valid ones.
			if o.dist && o.distMsgs != 4 {
				t.Fatalf("trial %d: valid distributed round delivered %d verdicts, want 4", trial, o.distMsgs)
			}
			if o.distMsgs < 1 || o.distMsgs > 4 {
				t.Fatalf("trial %d: distributed round delivered %d verdicts", trial, o.distMsgs)
			}
			if o.cent && (o.centBytes != base.centBytes || o.centSaved != 0) {
				t.Fatalf("trial %d: accepted transfer bytes vary with chunk size: %+v", trial, got)
			}
			if !o.cent && i > 0 && o.centBytes < got[i-1].centBytes {
				// Delivered bytes on a rejected transfer grow with the
				// chunk size (the failing frame rounds up to the budget).
				t.Fatalf("trial %d: larger chunk delivered fewer bytes: %+v", trial, got)
			}
		}
		if !base.cent {
			// Some chunk size must actually save bytes on rejection.
			if got[0].centSaved == 0 {
				t.Fatalf("trial %d: rejected federation saved no bytes at 16 B chunks: %+v", trial, got)
			}
		}
	}
}

// TestUpdatePeerCentralizedChunked checks the collaborative edit under
// chunking: verdict parity across chunk sizes and byte savings on the
// rejected edit.
func TestUpdatePeerCentralizedChunked(t *testing.T) {
	for _, chunk := range []int{16, 4096, Unchunked} {
		n, typing := eurostatSetup(t)
		n.ChunkSize = chunk
		attachValidDocs(t, n, typing, []int{2, 2, 2})
		root2 := typing[2].Starts[0]
		ok, err := n.UpdatePeerCentralized("f2", countryDoc(root2, 3, false))
		if err != nil || !ok {
			t.Fatalf("chunk %d: valid edit rejected: %v %v", chunk, ok, err)
		}
		ok, err = n.UpdatePeerCentralized("f2",
			xmltree.MustParse(root2+"(nationalIndex(country))"))
		if err != nil || ok {
			t.Fatalf("chunk %d: invalid edit admitted: %v %v", chunk, ok, err)
		}
	}
}

// TestCentralizedBoundedDelivery: with tiny chunks, rejecting an invalid
// first fragment must leave almost all of a huge later fragment
// unshipped — the Bytes delivered stay near the failure point while
// BytesSaved absorbs the rest.
func TestCentralizedBoundedDelivery(t *testing.T) {
	n, typing := eurostatSetup(t)
	n.ChunkSize = 64
	attachValidDocs(t, n, typing, []int{1, 1, 5000})
	// Corrupt the *first* peer so the kernel walk fails immediately.
	n.Peers["f0"].Doc = xmltree.MustParse(typing[0].Starts[0] + "(zz)")
	ok, err := n.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("invalid federation accepted")
	}
	tot := n.Stats.Totals()
	fatSize := n.Peers["f3"].Doc.XMLSize()
	if tot.Bytes >= fatSize/10 {
		t.Errorf("mid-transfer rejection delivered %d bytes; the 5000-entry fragment alone is %d", tot.Bytes, fatSize)
	}
	if tot.BytesSaved <= fatSize/2 {
		t.Errorf("BytesSaved = %d, expected most of the %d-byte fat fragment", tot.BytesSaved, fatSize)
	}
}
