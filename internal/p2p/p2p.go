// Package p2p simulates the distributed Active XML setting that motivates
// the paper: a kernel peer holds the kernel document and each resource
// peer holds the subtree document behind one docking point. It implements
// the two validation strategies the theory compares:
//
//   - distributed validation: each resource peer validates its own
//     document against its local type τᵢ and ships only a verdict; the
//     kernel peer checks nothing beyond the typing's guarantees — by
//     soundness, all-local-valid implies the materialized document
//     satisfies the global type, and by completeness no valid document is
//     rejected;
//   - centralized validation: the kernel peer pulls every document and
//     validates the extension extT(t1..tn) against the global type.
//
// Validation runs on the streaming engine (internal/stream): each peer
// compiles its type once into a shared machine and checks fragments in a
// single pass with memory proportional to depth, and the kernel peer
// validates the extension by streaming the kernel's events with each
// docking point spliced from the received fragment bytes — the extension
// document is never materialized (Kernel.Extend is not called).
//
// The network is simulated in-memory with goroutines and channels; message
// and byte counts are recorded so the example programs and benchmarks can
// report the communication advantage of local typings (the paper's
// Remark 4 and introduction). Verdict messages are costed at a fixed wire
// size; document messages are costed by their serialized bytes, produced
// exactly once per message (the same bytes are the payload the kernel
// peer streams from).
package p2p

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/stream"
	"dxml/internal/xmltree"
)

// Stats accumulates simulated network traffic.
type Stats struct {
	mu       sync.Mutex
	Messages int
	Bytes    int
}

func (s *Stats) add(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Messages++
	s.Bytes += bytes
}

// Snapshot returns the current counters.
func (s *Stats) Snapshot() (messages, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Messages, s.Bytes
}

// message is what travels on the simulated wire: either a verdict or a
// document serialized once at the sending peer.
type message struct {
	from    string
	verdict bool
	doc     []byte // serialized document; nil for verdict-only messages
}

// verdictMessage builds a verdict-only message.
func verdictMessage(from string, verdict bool) message {
	return message{from: from, verdict: verdict}
}

// docMessage serializes doc exactly once; the bytes are both the payload
// the kernel peer streams from and the wire-size measure.
func docMessage(from string, doc *xmltree.Tree) message {
	return message{from: from, doc: []byte(doc.XMLString())}
}

// wireSize is the serialized size of a message in bytes: the fixed
// verdict frame plus the document payload, if any. No tree is ever
// re-serialized just to be measured.
func (m message) wireSize() int {
	n := len(m.from) + 1
	n += len(m.doc)
	return n
}

// ResourcePeer owns one docking point's document and local type. The
// streaming machine for the type is compiled lazily once and shared by
// every validation; replace the peer (AddPeer) rather than mutating Type
// in place.
type ResourcePeer struct {
	Func string
	Doc  *xmltree.Tree
	Type *schema.EDTD

	compileOnce sync.Once
	machine     *stream.Machine
}

// Machine returns the peer's compiled streaming validator.
func (p *ResourcePeer) Machine() *stream.Machine {
	p.compileOnce.Do(func() { p.machine = stream.Compile(p.Type) })
	return p.machine
}

// Validate streams the peer's current document through its local type,
// checking ctx between elements so a canceled round stops mid-document.
func (p *ResourcePeer) Validate(ctx context.Context) error {
	r := p.Machine().NewRunner()
	defer r.Release()
	if err := stream.StreamTree(p.Doc, &ctxHandler{ctx: ctx, h: r}); err != nil {
		return err
	}
	return r.Finish()
}

// ctxHandler forwards events, polling the context every few hundred
// elements so in-flight validations notice a short-circuit cancel.
type ctxHandler struct {
	ctx context.Context
	h   stream.Handler
	n   int
}

func (c *ctxHandler) check() error {
	c.n++
	if c.n&255 == 0 {
		return c.ctx.Err()
	}
	return nil
}

func (c *ctxHandler) StartElement(label string) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.StartElement(label)
}

func (c *ctxHandler) Text() error { return c.h.Text() }

func (c *ctxHandler) EndElement() error { return c.h.EndElement() }

// Network is a simulated federation: one kernel peer plus one resource
// peer per docking point.
type Network struct {
	Kernel     *axml.Kernel
	GlobalType *schema.EDTD
	Peers      map[string]*ResourcePeer
	Stats      Stats

	compileOnce sync.Once
	machine     *stream.Machine
}

// NewNetwork builds a federation for the kernel; documents and local
// types are attached per function with AddPeer.
func NewNetwork(kernel *axml.Kernel, global *schema.EDTD) *Network {
	return &Network{
		Kernel:     kernel,
		GlobalType: global,
		Peers:      map[string]*ResourcePeer{},
	}
}

// GlobalMachine returns the kernel peer's compiled validator for the
// global type.
func (n *Network) GlobalMachine() *stream.Machine {
	n.compileOnce.Do(func() { n.machine = stream.Compile(n.GlobalType) })
	return n.machine
}

// AddPeer attaches a resource peer for the given docking point.
func (n *Network) AddPeer(fn string, doc *xmltree.Tree, local *schema.EDTD) error {
	if n.Kernel.FuncIndex(fn) < 0 {
		return fmt.Errorf("p2p: kernel has no docking point %s", fn)
	}
	n.Peers[fn] = &ResourcePeer{Func: fn, Doc: doc, Type: local}
	return nil
}

// peers resolves every docking point to its peer, failing on gaps.
func (n *Network) peers() ([]*ResourcePeer, error) {
	funcs := n.Kernel.Funcs()
	out := make([]*ResourcePeer, len(funcs))
	for i, f := range funcs {
		peer, ok := n.Peers[f]
		if !ok {
			return nil, fmt.Errorf("p2p: no peer for %s", f)
		}
		out[i] = peer
	}
	return out, nil
}

// ValidateDistributed runs the distributed protocol: every peer validates
// locally in parallel and sends a verdict-only message. The result is the
// conjunction of the local verdicts. The round short-circuits: the first
// failing verdict cancels the outstanding peers (canceled peers abort
// mid-document and send nothing), so traffic is at most n verdict
// messages and Stats counts exactly the messages delivered.
func (n *Network) ValidateDistributed() (bool, error) {
	return n.ValidateDistributedContext(context.Background())
}

// ValidateDistributedContext is ValidateDistributed under an external
// context; canceling it aborts the round.
func (n *Network) ValidateDistributedContext(ctx context.Context) (bool, error) {
	peers, err := n.peers()
	if err != nil {
		return false, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan message, len(peers))
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(p *ResourcePeer) {
			defer wg.Done()
			if ctx.Err() != nil {
				return // round already decided: send nothing
			}
			verr := p.Validate(ctx)
			if ctx.Err() != nil {
				return // canceled mid-validation
			}
			ch <- verdictMessage(p.Func, verr == nil)
		}(peer)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	all := true
	delivered := 0
	for m := range ch {
		delivered++
		n.Stats.add(m.wireSize())
		if !m.verdict {
			all = false
			cancel() // short-circuit the peers still running
		}
	}
	if all && delivered < len(peers) {
		// Verdicts are missing and none of them failed, so the caller's
		// context must have ended mid-round (our own short-circuit cancel
		// always comes with a failing verdict). A fully delivered round is
		// conclusive regardless of the context's state.
		return false, ctx.Err()
	}
	return all, nil
}

// ValidateCentralized runs the centralized protocol: every peer ships its
// whole document (serialized once), and the kernel peer validates the
// extension extT(t1..tn) against the global type by streaming the kernel
// events with each docking point spliced from the received bytes. The
// extension is never materialized. Traffic: n full documents.
func (n *Network) ValidateCentralized() (bool, error) {
	peers, err := n.peers()
	if err != nil {
		return false, err
	}
	ch := make(chan message, len(peers))
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(p *ResourcePeer) {
			defer wg.Done()
			ch <- docMessage(p.Func, p.Doc)
		}(peer)
	}
	wg.Wait()
	close(ch)
	frags := map[string][]byte{}
	for m := range ch {
		n.Stats.add(m.wireSize())
		frags[m.from] = m.doc
	}
	return n.validateExtensionStream(frags), nil
}

// validateExtensionStream validates extT against the global type from
// serialized fragments, in one streaming pass.
func (n *Network) validateExtensionStream(frags map[string][]byte) bool {
	r := n.GlobalMachine().NewRunner()
	defer r.Release()
	err := stream.StreamKernel(n.Kernel, r, func(fn string, h stream.Handler) error {
		return stream.StreamXMLInner(bytes.NewReader(frags[fn]), h)
	})
	if err != nil {
		return false
	}
	return r.Finish() == nil
}

// Materialize returns the extension document (for inspection).
func (n *Network) Materialize() (*xmltree.Tree, error) {
	ext := map[string]*xmltree.Tree{}
	for f, p := range n.Peers {
		ext[f] = p.Doc
	}
	return n.Kernel.Extend(ext)
}

// UpdatePeer is the collaborative-editing operation of the paper's
// introduction (WebDAV / XML Fragment Interchange): a resource peer
// replaces its fragment. With a *local* typing the edit is admissible iff
// the new fragment validates against the peer's own type — no other peer
// and no global document is touched. The verdict message is the only
// traffic recorded.
//
// The edit is applied only when locally valid; the previous document is
// returned so callers can inspect or restore it.
func (n *Network) UpdatePeer(fn string, newDoc *xmltree.Tree) (admitted bool, previous *xmltree.Tree, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, nil, fmt.Errorf("p2p: no peer for %s", fn)
	}
	verdict := peer.Machine().ValidateTree(newDoc) == nil
	n.Stats.add(verdictMessage(fn, verdict).wireSize())
	if !verdict {
		return false, peer.Doc, nil
	}
	previous = peer.Doc
	peer.Doc = newDoc
	return true, previous, nil
}

// UpdatePeerCentralized is the same edit under centralized validation:
// the new fragment is shipped to the kernel peer, every other fragment is
// pulled, and the whole extension is re-validated as a stream; on failure
// the edit is rolled back.
func (n *Network) UpdatePeerCentralized(fn string, newDoc *xmltree.Tree) (admitted bool, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, fmt.Errorf("p2p: no peer for %s", fn)
	}
	if _, err := n.peers(); err != nil {
		return false, err
	}
	frags := map[string][]byte{}
	m := docMessage(fn, newDoc)
	n.Stats.add(m.wireSize())
	frags[fn] = m.doc
	// The kernel peer must pull every other fragment to re-validate.
	for f, p := range n.Peers {
		if f != fn {
			m := docMessage(f, p.Doc)
			n.Stats.add(m.wireSize())
			frags[f] = m.doc
		}
	}
	if !n.validateExtensionStream(frags) {
		return false, nil
	}
	peer.Doc = newDoc
	return true, nil
}
