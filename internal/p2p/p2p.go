// Package p2p simulates the distributed Active XML setting that motivates
// the paper: a kernel peer holds the kernel document and each resource
// peer holds the subtree document behind one docking point. It implements
// the two validation strategies the theory compares:
//
//   - distributed validation: each resource peer validates its own
//     document against its local type τᵢ and ships only a verdict; the
//     kernel peer checks nothing beyond the typing's guarantees — by
//     soundness, all-local-valid implies the materialized document
//     satisfies the global type, and by completeness no valid document is
//     rejected;
//   - centralized validation: the kernel peer pulls every document,
//     materializes extT(t1..tn) and validates it against the global type.
//
// The network is simulated in-memory with goroutines and channels; message
// and byte counts are recorded so the example programs and benchmarks can
// report the communication advantage of local typings (the paper's
// Remark 4 and introduction).
package p2p

import (
	"fmt"
	"sync"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// Stats accumulates simulated network traffic.
type Stats struct {
	mu       sync.Mutex
	Messages int
	Bytes    int
}

func (s *Stats) add(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Messages++
	s.Bytes += bytes
}

// Snapshot returns the current counters.
func (s *Stats) Snapshot() (messages, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Messages, s.Bytes
}

// message is what travels on the simulated wire.
type message struct {
	from    string
	verdict bool
	doc     *xmltree.Tree // nil for verdict-only messages
}

// wireSize approximates the serialized size of a message in bytes.
func (m message) wireSize() int {
	n := len(m.from) + 1
	if m.doc != nil {
		n += len(m.doc.XMLString())
	}
	return n
}

// ResourcePeer owns one docking point's document and local type.
type ResourcePeer struct {
	Func string
	Doc  *xmltree.Tree
	Type *schema.EDTD
}

// Network is a simulated federation: one kernel peer plus one resource
// peer per docking point.
type Network struct {
	Kernel     *axml.Kernel
	GlobalType *schema.EDTD
	Peers      map[string]*ResourcePeer
	Stats      Stats
}

// NewNetwork builds a federation for the kernel; documents and local
// types are attached per function with AddPeer.
func NewNetwork(kernel *axml.Kernel, global *schema.EDTD) *Network {
	return &Network{
		Kernel:     kernel,
		GlobalType: global,
		Peers:      map[string]*ResourcePeer{},
	}
}

// AddPeer attaches a resource peer for the given docking point.
func (n *Network) AddPeer(fn string, doc *xmltree.Tree, local *schema.EDTD) error {
	if n.Kernel.FuncIndex(fn) < 0 {
		return fmt.Errorf("p2p: kernel has no docking point %s", fn)
	}
	n.Peers[fn] = &ResourcePeer{Func: fn, Doc: doc, Type: local}
	return nil
}

// ValidateDistributed runs the distributed protocol: every peer validates
// locally in parallel and sends a verdict-only message. The result is the
// conjunction of the local verdicts. Traffic: n verdict messages.
func (n *Network) ValidateDistributed() (bool, error) {
	funcs := n.Kernel.Funcs()
	ch := make(chan message, len(funcs))
	var wg sync.WaitGroup
	for _, f := range funcs {
		peer, ok := n.Peers[f]
		if !ok {
			return false, fmt.Errorf("p2p: no peer for %s", f)
		}
		wg.Add(1)
		go func(p *ResourcePeer) {
			defer wg.Done()
			verdict := p.Type.Validate(p.Doc) == nil
			ch <- message{from: p.Func, verdict: verdict}
		}(peer)
	}
	wg.Wait()
	close(ch)
	all := true
	for m := range ch {
		n.Stats.add(m.wireSize())
		if !m.verdict {
			all = false
		}
	}
	return all, nil
}

// ValidateCentralized runs the centralized protocol: every peer ships its
// whole document, the kernel peer materializes and validates globally.
// Traffic: n full documents.
func (n *Network) ValidateCentralized() (bool, error) {
	funcs := n.Kernel.Funcs()
	ch := make(chan message, len(funcs))
	var wg sync.WaitGroup
	for _, f := range funcs {
		peer, ok := n.Peers[f]
		if !ok {
			return false, fmt.Errorf("p2p: no peer for %s", f)
		}
		wg.Add(1)
		go func(p *ResourcePeer) {
			defer wg.Done()
			ch <- message{from: p.Func, doc: p.Doc}
		}(peer)
	}
	wg.Wait()
	close(ch)
	ext := map[string]*xmltree.Tree{}
	for m := range ch {
		n.Stats.add(m.wireSize())
		ext[m.from] = m.doc
	}
	doc, err := n.Kernel.Extend(ext)
	if err != nil {
		return false, err
	}
	return n.GlobalType.Validate(doc) == nil, nil
}

// Materialize returns the extension document (for inspection).
func (n *Network) Materialize() (*xmltree.Tree, error) {
	ext := map[string]*xmltree.Tree{}
	for f, p := range n.Peers {
		ext[f] = p.Doc
	}
	return n.Kernel.Extend(ext)
}

// UpdatePeer is the collaborative-editing operation of the paper's
// introduction (WebDAV / XML Fragment Interchange): a resource peer
// replaces its fragment. With a *local* typing the edit is admissible iff
// the new fragment validates against the peer's own type — no other peer
// and no global document is touched. The verdict message is the only
// traffic recorded.
//
// The edit is applied only when locally valid; the previous document is
// returned so callers can inspect or restore it.
func (n *Network) UpdatePeer(fn string, newDoc *xmltree.Tree) (admitted bool, previous *xmltree.Tree, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, nil, fmt.Errorf("p2p: no peer for %s", fn)
	}
	verdict := peer.Type.Validate(newDoc) == nil
	n.Stats.add(message{from: fn, verdict: verdict}.wireSize())
	if !verdict {
		return false, peer.Doc, nil
	}
	previous = peer.Doc
	peer.Doc = newDoc
	return true, previous, nil
}

// UpdatePeerCentralized is the same edit under centralized validation:
// the new fragment is shipped to the kernel peer, the whole document is
// re-materialized and re-validated; on failure the edit is rolled back.
func (n *Network) UpdatePeerCentralized(fn string, newDoc *xmltree.Tree) (admitted bool, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, fmt.Errorf("p2p: no peer for %s", fn)
	}
	n.Stats.add(message{from: fn, doc: newDoc}.wireSize())
	old := peer.Doc
	peer.Doc = newDoc
	// The kernel peer must pull every other fragment to re-validate.
	for f, p := range n.Peers {
		if f != fn {
			n.Stats.add(message{from: f, doc: p.Doc}.wireSize())
		}
	}
	doc, err := n.Materialize()
	if err != nil {
		peer.Doc = old
		return false, err
	}
	if n.GlobalType.Validate(doc) != nil {
		peer.Doc = old
		return false, nil
	}
	return true, nil
}
