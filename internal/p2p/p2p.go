// Package p2p simulates the distributed Active XML setting that motivates
// the paper: a kernel peer holds the kernel document and each resource
// peer holds the subtree document behind one docking point. It implements
// the two validation strategies the theory compares:
//
//   - distributed validation: each resource peer validates its own
//     document against its local type τᵢ and ships only a verdict; the
//     kernel peer checks nothing beyond the typing's guarantees — by
//     soundness, all-local-valid implies the materialized document
//     satisfies the global type, and by completeness no valid document is
//     rejected;
//   - centralized validation: the kernel peer pulls every document and
//     validates the extension extT(t1..tn) against the global type.
//
// Validation runs on the streaming engine (internal/stream): each peer
// compiles its type once into a shared machine and checks fragments in a
// single pass with memory proportional to depth, and the kernel peer
// validates the extension by streaming the kernel's events with each
// docking point spliced from the received fragment bytes — the extension
// document is never materialized (Kernel.Extend is not called).
//
// The network is simulated in-memory with goroutines and channels.
// Document transfers are *chunked*: a fragment travels as a sequence of
// fixed-budget frames (Network.ChunkSize) that the kernel peer feeds
// straight into a push-parser Feeder as they arrive. Three properties
// follow:
//
//   - the kernel peer's memory is O(chunk + depth) per transfer instead
//     of O(fragment): no fragment is ever buffered whole;
//   - invalid fragments are rejected *mid-transfer* — the kernel peer
//     stops pulling frames the moment its validator fails, and the bytes
//     never shipped are recorded in Stats.BytesSaved;
//   - backpressure is real: senders serialize incrementally and block
//     until the kernel peer consumes, so a slow consumer bounds every
//     producer's memory too.
//
// Message and byte counts are recorded so the example programs and
// benchmarks can report the communication advantage of local typings
// (the paper's Remark 4 and introduction). Verdict messages are costed
// at a fixed wire size; document messages are costed by the serialized
// bytes actually delivered. Verdicts and logical message counts are
// invariant under the chunk size — only delivered bytes (on rejected
// transfers) and frame counts vary.
package p2p

import (
	"context"
	"fmt"
	"math"
	"sync"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/stream"
	"dxml/internal/xmltree"
)

// DefaultChunkSize is the fragment frame budget when Network.ChunkSize is
// left zero: small enough to bound peer memory, large enough that framing
// overhead is noise.
const DefaultChunkSize = 4096

// Unchunked disables fragment chunking: each document travels as one
// frame, reproducing the pre-chunking monolithic wire.
const Unchunked = -1

// Stats accumulates simulated network traffic.
type Stats struct {
	mu       sync.Mutex
	Messages int // logical messages: verdicts and fragment shipments
	// Frames counts wire deliveries: every message contributes one
	// envelope frame, and document messages add one frame per chunk
	// consumed (so even unchunked, a shipped document costs two).
	Frames int
	Bytes  int // payload bytes delivered
	// BytesSaved counts fragment bytes that never traveled because the
	// kernel peer rejected the document mid-transfer (or the round was
	// short-circuited): the communication win of chunked shipping.
	BytesSaved int
}

// addMessage records a message envelope (and its first accounting frame).
func (s *Stats) addMessage(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Messages++
	s.Frames++
	s.Bytes += bytes
}

// addFrame records one delivered payload frame of an open message.
func (s *Stats) addFrame(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Frames++
	s.Bytes += bytes
}

// addSaved records bytes a canceled transfer never shipped.
func (s *Stats) addSaved(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.BytesSaved += bytes
}

// Snapshot returns the message and byte counters.
func (s *Stats) Snapshot() (messages, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Messages, s.Bytes
}

// Totals is a consistent copy of all counters.
type Totals struct {
	Messages   int
	Frames     int
	Bytes      int
	BytesSaved int
}

// Totals returns a consistent copy of all counters.
func (s *Stats) Totals() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Totals{Messages: s.Messages, Frames: s.Frames, Bytes: s.Bytes, BytesSaved: s.BytesSaved}
}

// message is a verdict frame on the simulated wire. Documents no longer
// travel as single messages — see docStream.
type message struct {
	from    string
	verdict bool
}

// verdictMessage builds a verdict-only message.
func verdictMessage(from string, verdict bool) message {
	return message{from: from, verdict: verdict}
}

// wireSize is the fixed serialized size of a verdict frame.
func (m message) wireSize() int { return len(m.from) + 1 }

// docStream is one fragment in flight: the owning peer produces
// fixed-budget frames, the kernel peer consumes them in kernel-document
// order. The channel is unbuffered, so delivery is synchronous
// (TCP-like backpressure) and the accounting of a rejected transfer is
// deterministic.
type docStream struct {
	from string
	ch   chan []byte
}

// frameWriter chops an incremental serialization into chunk-budget
// frames. Two swap buffers make the transfer allocation-steady: while
// the receiver feeds one frame, the sender fills the other.
type frameWriter struct {
	ctx    context.Context
	ch     chan<- []byte
	budget int
	buf    [2][]byte
	cur    int
	sent   int
}

func (w *frameWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		space := w.budget - len(w.buf[w.cur])
		if space == 0 {
			if err := w.send(); err != nil {
				return total - len(p), err
			}
			continue
		}
		n := min(space, len(p))
		w.buf[w.cur] = append(w.buf[w.cur], p[:n]...)
		p = p[n:]
	}
	return total, nil
}

// send ships the current frame, honoring cancellation so a rejected
// transfer stops producing.
func (w *frameWriter) send() error {
	frame := w.buf[w.cur]
	if len(frame) == 0 {
		return nil
	}
	select {
	case w.ch <- frame:
		w.sent += len(frame)
		w.cur = 1 - w.cur
		w.buf[w.cur] = w.buf[w.cur][:0]
		return nil
	case <-w.ctx.Done():
		return w.ctx.Err()
	}
}

// sendDoc serializes doc incrementally into st's frames. The sender never
// holds more than two frame buffers plus its recursion stack — O(chunk +
// depth) memory — and stops serializing the moment the round is canceled,
// recording the bytes it never shipped.
func sendDoc(ctx context.Context, st *docStream, doc *xmltree.Tree, chunk int, stats *Stats) {
	w := &frameWriter{ctx: ctx, ch: st.ch, budget: chunk}
	err := doc.ToXML(w)
	if err == nil {
		err = w.send() // flush the final partial frame
	}
	close(st.ch)
	if err != nil {
		// The full size is only needed on the rejection path, so the
		// accepted common case never pays the extra tree walk.
		stats.addSaved(doc.XMLSize() - w.sent)
	}
}

// ResourcePeer owns one docking point's document and local type. The
// streaming machine for the type is compiled lazily once and shared by
// every validation; replace the peer (AddPeer) rather than mutating Type
// in place.
type ResourcePeer struct {
	Func string
	Doc  *xmltree.Tree
	Type *schema.EDTD

	compileOnce sync.Once
	machine     *stream.Machine
}

// Machine returns the peer's compiled streaming validator.
func (p *ResourcePeer) Machine() *stream.Machine {
	p.compileOnce.Do(func() { p.machine = stream.Compile(p.Type) })
	return p.machine
}

// Validate streams the peer's current document through its local type,
// checking ctx between elements so a canceled round stops mid-document.
func (p *ResourcePeer) Validate(ctx context.Context) error {
	r := p.Machine().NewRunner()
	defer r.Release()
	if err := stream.StreamTree(p.Doc, &ctxHandler{ctx: ctx, h: r}); err != nil {
		return err
	}
	return r.Finish()
}

// ctxHandler forwards events, polling the context every few hundred
// elements so in-flight validations notice a short-circuit cancel.
type ctxHandler struct {
	ctx context.Context
	h   stream.Handler
	n   int
}

func (c *ctxHandler) check() error {
	c.n++
	if c.n&255 == 0 {
		return c.ctx.Err()
	}
	return nil
}

func (c *ctxHandler) StartElement(label string) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.StartElement(label)
}

func (c *ctxHandler) Text() error { return c.h.Text() }

func (c *ctxHandler) EndElement() error { return c.h.EndElement() }

// Network is a simulated federation: one kernel peer plus one resource
// peer per docking point.
type Network struct {
	Kernel     *axml.Kernel
	GlobalType *schema.EDTD
	Peers      map[string]*ResourcePeer
	Stats      Stats

	// ChunkSize is the fragment frame budget in bytes: larger chunks
	// cost fewer frames (less framing/handoff overhead) but more peer
	// memory and more wasted bytes when a fragment is rejected
	// mid-transfer. 0 means DefaultChunkSize; any negative value
	// (canonically Unchunked) ships each document as a single frame.
	// Verdicts and message counts do not depend on it.
	ChunkSize int

	compileOnce sync.Once
	machine     *stream.Machine
}

// chunkBudget resolves the configured chunk size: positive is the frame
// budget, zero the default, and any negative value means Unchunked — a
// mistyped negative must not silently fall back to the default.
func (n *Network) chunkBudget() int {
	switch {
	case n.ChunkSize > 0:
		return n.ChunkSize
	case n.ChunkSize < 0:
		return math.MaxInt
	default:
		return DefaultChunkSize
	}
}

// NewNetwork builds a federation for the kernel; documents and local
// types are attached per function with AddPeer.
func NewNetwork(kernel *axml.Kernel, global *schema.EDTD) *Network {
	return &Network{
		Kernel:     kernel,
		GlobalType: global,
		Peers:      map[string]*ResourcePeer{},
	}
}

// GlobalMachine returns the kernel peer's compiled validator for the
// global type.
func (n *Network) GlobalMachine() *stream.Machine {
	n.compileOnce.Do(func() { n.machine = stream.Compile(n.GlobalType) })
	return n.machine
}

// AddPeer attaches a resource peer for the given docking point.
func (n *Network) AddPeer(fn string, doc *xmltree.Tree, local *schema.EDTD) error {
	if n.Kernel.FuncIndex(fn) < 0 {
		return fmt.Errorf("p2p: kernel has no docking point %s", fn)
	}
	n.Peers[fn] = &ResourcePeer{Func: fn, Doc: doc, Type: local}
	return nil
}

// peers resolves every docking point to its peer, failing on gaps.
func (n *Network) peers() ([]*ResourcePeer, error) {
	funcs := n.Kernel.Funcs()
	out := make([]*ResourcePeer, len(funcs))
	for i, f := range funcs {
		peer, ok := n.Peers[f]
		if !ok {
			return nil, fmt.Errorf("p2p: no peer for %s", f)
		}
		out[i] = peer
	}
	return out, nil
}

// ValidateDistributed runs the distributed protocol: every peer validates
// locally in parallel and sends a verdict-only message. The result is the
// conjunction of the local verdicts. The round short-circuits: the first
// failing verdict cancels the outstanding peers (canceled peers abort
// mid-document and send nothing), so traffic is at most n verdict
// messages and Stats counts exactly the messages delivered.
func (n *Network) ValidateDistributed() (bool, error) {
	return n.ValidateDistributedContext(context.Background())
}

// ValidateDistributedContext is ValidateDistributed under an external
// context; canceling it aborts the round.
func (n *Network) ValidateDistributedContext(ctx context.Context) (bool, error) {
	peers, err := n.peers()
	if err != nil {
		return false, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan message, len(peers))
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(p *ResourcePeer) {
			defer wg.Done()
			if ctx.Err() != nil {
				return // round already decided: send nothing
			}
			verr := p.Validate(ctx)
			if ctx.Err() != nil {
				return // canceled mid-validation
			}
			ch <- verdictMessage(p.Func, verr == nil)
		}(peer)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	all := true
	delivered := 0
	for m := range ch {
		delivered++
		n.Stats.addMessage(m.wireSize())
		if !m.verdict {
			all = false
			cancel() // short-circuit the peers still running
		}
	}
	if all && delivered < len(peers) {
		// Verdicts are missing and none of them failed, so the caller's
		// context must have ended mid-round (our own short-circuit cancel
		// always comes with a failing verdict). A fully delivered round is
		// conclusive regardless of the context's state.
		return false, ctx.Err()
	}
	return all, nil
}

// ValidateCentralized runs the centralized protocol: every peer ships its
// whole document in chunk-budget frames, and the kernel peer validates
// the extension extT(t1..tn) against the global type by streaming its own
// kernel events with each docking point spliced from the frames as they
// arrive. Neither the extension nor any single fragment is ever
// materialized at the kernel peer — its memory is O(chunk + depth) — and
// an invalid document is rejected mid-transfer: frames past the failure
// are never pulled, and their bytes are recorded in Stats.BytesSaved.
// Traffic on a valid federation: n full documents.
func (n *Network) ValidateCentralized() (bool, error) {
	if _, err := n.peers(); err != nil {
		return false, err
	}
	docs := make(map[string]*xmltree.Tree, len(n.Peers))
	for f, p := range n.Peers {
		docs[f] = p.Doc
	}
	return n.validateExtensionChunked(docs), nil
}

// validateExtensionChunked validates extT against the global type with
// every docking point's document shipped as a chunked stream, in one pass
// at the kernel peer.
func (n *Network) validateExtensionChunked(docs map[string]*xmltree.Tree) bool {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunk := n.chunkBudget()
	streams := make(map[string]*docStream, len(docs))
	var wg sync.WaitGroup
	for _, f := range n.Kernel.Funcs() {
		st := &docStream{from: f, ch: make(chan []byte)}
		streams[f] = st
		wg.Add(1)
		go func(doc *xmltree.Tree) {
			defer wg.Done()
			sendDoc(ctx, st, doc, chunk, &n.Stats)
		}(docs[f])
	}
	r := n.GlobalMachine().NewRunner()
	err := stream.StreamKernel(n.Kernel, r, func(fn string, h stream.Handler) error {
		return n.receiveFragment(streams[fn], h)
	})
	if err == nil {
		err = r.Finish()
	}
	r.Release()
	cancel()  // stop senders whose frames the verdict no longer needs
	wg.Wait() // settle BytesSaved before the caller reads Stats
	return err == nil
}

// receiveFragment is the kernel peer's side of one chunked transfer: it
// pulls frames and pushes them into an inner Feeder splicing the
// fragment's forest into h. The first validation or well-formedness
// error stops the pull — mid-transfer rejection.
func (n *Network) receiveFragment(st *docStream, h stream.Handler) error {
	f := stream.NewInnerFeeder(h)
	n.Stats.addMessage(len(st.from) + 1) // message envelope
	for frame := range st.ch {
		n.Stats.addFrame(len(frame))
		if err := f.Feed(frame); err != nil {
			return err
		}
	}
	return f.Close()
}

// Materialize returns the extension document (for inspection).
func (n *Network) Materialize() (*xmltree.Tree, error) {
	ext := map[string]*xmltree.Tree{}
	for f, p := range n.Peers {
		ext[f] = p.Doc
	}
	return n.Kernel.Extend(ext)
}

// UpdatePeer is the collaborative-editing operation of the paper's
// introduction (WebDAV / XML Fragment Interchange): a resource peer
// replaces its fragment. With a *local* typing the edit is admissible iff
// the new fragment validates against the peer's own type — no other peer
// and no global document is touched. The verdict message is the only
// traffic recorded.
//
// The edit is applied only when locally valid; the previous document is
// returned so callers can inspect or restore it.
func (n *Network) UpdatePeer(fn string, newDoc *xmltree.Tree) (admitted bool, previous *xmltree.Tree, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, nil, fmt.Errorf("p2p: no peer for %s", fn)
	}
	verdict := peer.Machine().ValidateTree(newDoc) == nil
	n.Stats.addMessage(verdictMessage(fn, verdict).wireSize())
	if !verdict {
		return false, peer.Doc, nil
	}
	previous = peer.Doc
	peer.Doc = newDoc
	return true, previous, nil
}

// UpdatePeerCentralized is the same edit under centralized validation:
// the new fragment is shipped to the kernel peer, every other fragment is
// pulled, and the whole extension is re-validated chunk by chunk; on
// failure the edit is rolled back — and because rejection happens
// mid-transfer, a bad edit deep in the kernel walk saves every byte the
// kernel peer no longer needs to pull.
func (n *Network) UpdatePeerCentralized(fn string, newDoc *xmltree.Tree) (admitted bool, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, fmt.Errorf("p2p: no peer for %s", fn)
	}
	if _, err := n.peers(); err != nil {
		return false, err
	}
	// The kernel peer pulls every fragment, with the edited docking point
	// contributing the new document.
	docs := make(map[string]*xmltree.Tree, len(n.Peers))
	for f, p := range n.Peers {
		docs[f] = p.Doc
	}
	docs[fn] = newDoc
	if !n.validateExtensionChunked(docs) {
		return false, nil
	}
	peer.Doc = newDoc
	return true, nil
}
