// Package p2p implements the distributed Active XML setting that
// motivates the paper: a kernel peer holds the kernel document and each
// resource peer holds the subtree document behind one docking point. It
// implements the two validation strategies the theory compares:
//
//   - distributed validation: each resource peer validates its own
//     document against its local type τᵢ and ships only a verdict; the
//     kernel peer checks nothing beyond the typing's guarantees — by
//     soundness, all-local-valid implies the materialized document
//     satisfies the global type, and by completeness no valid document is
//     rejected;
//   - centralized validation: the kernel peer pulls every document and
//     validates the extension extT(t1..tn) against the global type.
//
// Validation runs on the streaming engine (internal/stream): each peer
// compiles its type once into a shared machine and checks fragments in a
// single pass with memory proportional to depth, and the kernel peer
// validates the extension by streaming the kernel's events with each
// docking point spliced from the received fragment bytes — the extension
// document is never materialized (Kernel.Extend is not called).
//
// The wire is the internal/transport abstraction: verdicts and chunked
// fragment streams move over any transport.Session — the in-process
// loopback by default, or real TCP sockets when Network.Transport is a
// dialed session (see ServeTCP and DialTCP). Document transfers are
// *chunked*: a fragment travels as a sequence of fixed-budget frames
// (Network.ChunkSize) that the kernel peer feeds straight into a
// push-parser Feeder as they arrive. Three properties hold on every
// transport, pinned by differential tests:
//
//   - the kernel peer's memory is O(chunk + depth) per transfer instead
//     of O(fragment): no fragment is ever buffered whole;
//   - invalid fragments are rejected *mid-transfer* — the kernel peer
//     stops pulling frames the moment its validator fails, a reject
//     frame halts the sender, and the bytes never shipped are recorded
//     in Stats.BytesSaved;
//   - backpressure is synchronous: senders serialize incrementally and
//     never run more than one chunk ahead of the kernel peer, so a slow
//     consumer bounds every producer's memory too.
//
// Message and byte counts are recorded so the example programs and
// benchmarks can report the communication advantage of local typings
// (the paper's Remark 4 and introduction). Verdict messages are costed
// at a fixed wire size; document messages are costed by the serialized
// bytes actually delivered. Verdicts and logical message counts are
// invariant under both the chunk size and the transport — only
// delivered bytes (on rejected transfers) and frame counts vary with
// the chunk budget, and none of it varies with the transport.
package p2p

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"dxml/internal/axml"
	"dxml/internal/live"
	"dxml/internal/obs"
	"dxml/internal/schema"
	"dxml/internal/stream"
	"dxml/internal/transport"
	"dxml/internal/xmltree"
)

// DefaultChunkSize is the fragment frame budget when Network.ChunkSize is
// left zero: small enough to bound peer memory, large enough that framing
// overhead is noise.
const DefaultChunkSize = 4096

// DefaultWindow is the per-stream credit window when Network.Window is
// zero, re-exported from the transport.
const DefaultWindow = transport.DefaultWindow

// ErrInvalidWindow is returned (wrapped) when Network.Window is
// negative — a nonsensical credit window is refused when the session is
// built, never allowed to become a runtime hang.
var ErrInvalidWindow = transport.ErrInvalidWindow

// Unchunked disables fragment chunking: each document travels as one
// frame, reproducing the pre-chunking monolithic wire.
const Unchunked = -1

// Stats accumulates network traffic at the protocol level: payload
// bytes and logical frames, identically on every transport (TCP's own
// framing overhead is not counted, which is what makes the in-process
// and TCP numbers comparable).
type Stats struct {
	mu       sync.Mutex
	Messages int // logical messages: verdicts and fragment shipments
	// Frames counts wire deliveries: every message contributes one
	// envelope frame, and document messages add one frame per chunk
	// consumed (so even unchunked, a shipped document costs two).
	Frames int
	Bytes  int // payload bytes delivered
	// BytesSaved counts fragment bytes that never traveled because the
	// kernel peer rejected the document mid-transfer (or the round was
	// short-circuited): the communication win of chunked shipping. It is
	// accounted on the receiver side — announced size minus consumed
	// chunk bytes — so it is invariant under the credit window. The
	// sender-side saving is smaller by up to Window·ChunkSize bytes: a
	// rejection halts the sender within its credit window, so chunks
	// already in flight (sent but never consumed) still traveled the
	// wire even though they count as saved here.
	BytesSaved int
	// Revalidated and Skipped account the live session's incremental
	// revalidation, in the result tree's flat byte measure: how much of
	// the extension each applied edit actually re-checked, and how much
	// the checkpointed summaries let the kernel peer skip.
	Revalidated int
	Skipped     int
	// Reconnects counts live-feed recoveries: a dropped subscription
	// that resubscribed (by log suffix or snapshot fallback). Recovery
	// envelopes are deliberately NOT added to Messages/Bytes — protocol
	// accounting stays comparable between a faulted run that resumed by
	// suffix and the fault-free run, which is exactly the differential
	// the chaos corpus pins.
	Reconnects int
}

// addMessage records a message envelope (and its first accounting frame).
func (s *Stats) addMessage(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Messages++
	s.Frames++
	s.Bytes += bytes
}

// addFrame records one delivered payload frame of an open message.
func (s *Stats) addFrame(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Frames++
	s.Bytes += bytes
}

// addSaved records bytes a canceled transfer never shipped.
func (s *Stats) addSaved(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.BytesSaved += bytes
}

// addRecheck records one incremental revalidation's byte split.
func (s *Stats) addRecheck(revalidated, skipped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Revalidated += revalidated
	s.Skipped += skipped
}

// addReconnect records one recovered live subscription.
func (s *Stats) addReconnect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Reconnects++
}

// Snapshot returns the message and byte counters.
func (s *Stats) Snapshot() (messages, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Messages, s.Bytes
}

// Totals is a consistent copy of all counters.
type Totals struct {
	Messages    int
	Frames      int
	Bytes       int
	BytesSaved  int
	Revalidated int
	Skipped     int
	Reconnects  int
}

// Totals returns a consistent copy of all counters.
func (s *Stats) Totals() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Totals{Messages: s.Messages, Frames: s.Frames, Bytes: s.Bytes, BytesSaved: s.BytesSaved,
		Revalidated: s.Revalidated, Skipped: s.Skipped, Reconnects: s.Reconnects}
}

// message is a verdict on the wire, costed at a fixed serialized size.
type message struct {
	from    string
	verdict bool
}

// verdictMessage builds a verdict-only message.
func verdictMessage(from string, verdict bool) message {
	return message{from: from, verdict: verdict}
}

// wireSize is the fixed serialized size of a verdict frame.
func (m message) wireSize() int { return len(m.from) + 1 }

// ResourcePeer owns one docking point's document and local type. The
// streaming machine for the type is compiled lazily once and shared by
// every validation; replace the peer (AddPeer) rather than mutating Type
// in place.
type ResourcePeer struct {
	Func string
	Doc  *xmltree.Tree
	Type *schema.EDTD

	// Live, when non-nil, is the peer's edit publisher: the editor's
	// document is authoritative (Doc holds the initial state), kernel
	// peers can subscribe to the edit log, and the one-shot protocols
	// read the editor's current tree. Attach one with
	// Network.AttachEditor.
	Live *live.Editor

	compileOnce sync.Once
	machine     *stream.Machine
}

// CurrentDoc returns the peer's current document: the live editor's
// tree when one is attached, the static Doc otherwise.
func (p *ResourcePeer) CurrentDoc() *xmltree.Tree {
	if p.Live != nil {
		return p.Live.Tree()
	}
	return p.Doc
}

// Machine returns the peer's compiled streaming validator.
func (p *ResourcePeer) Machine() *stream.Machine {
	p.compileOnce.Do(func() { p.machine = stream.Compile(p.Type) })
	return p.machine
}

// Validate streams the peer's current document through its local type,
// checking ctx between elements so a canceled round stops mid-document.
func (p *ResourcePeer) Validate(ctx context.Context) error {
	r := p.Machine().NewRunner()
	defer r.Release()
	if err := stream.StreamTree(p.CurrentDoc(), &ctxHandler{ctx: ctx, h: r}); err != nil {
		return err
	}
	return r.Finish()
}

// ctxHandler forwards events, polling the context every few hundred
// elements so in-flight validations notice a short-circuit cancel.
type ctxHandler struct {
	ctx context.Context
	h   stream.Handler
	n   int
}

func (c *ctxHandler) check() error {
	c.n++
	if c.n&255 == 0 {
		return c.ctx.Err()
	}
	return nil
}

func (c *ctxHandler) StartElement(label string) error {
	if err := c.check(); err != nil {
		return err
	}
	return c.h.StartElement(label)
}

func (c *ctxHandler) Text() error { c.n++; return c.h.Text() }

func (c *ctxHandler) EndElement() error { c.n++; return c.h.EndElement() }

// peerSource adapts a ResourcePeer to the transport's sender surface:
// verdicts from its machine, incremental serialization from the
// allocation-free XML emitter. A nil doc reads the peer's current
// document at call time (so a host serves edits without re-wiring);
// a non-nil doc pins an override (the collaborative-edit protocols).
type peerSource struct {
	peer *ResourcePeer
	doc  *xmltree.Tree
	obs  *obs.Collector // per-document validation telemetry (nil: no-op)
}

func (s *peerSource) document() *xmltree.Tree {
	if s.doc != nil {
		return s.doc
	}
	return s.peer.CurrentDoc()
}

func (s *peerSource) Verdict(ctx context.Context) bool {
	r := s.peer.Machine().NewRunner()
	defer r.Release()
	start := s.obs.Nanos()
	ch := &ctxHandler{ctx: ctx, h: r}
	err := stream.StreamTree(s.document(), ch)
	if err == nil {
		err = r.Finish()
	}
	s.obs.Observe(obs.HValidateDocNs, s.obs.Nanos()-start)
	s.obs.Add(obs.CDocsValidated, 1)
	s.obs.Add(obs.CStreamEvents, int64(ch.n))
	return err == nil
}

func (s *peerSource) Size() int { return s.document().XMLSize() }

func (s *peerSource) Serialize(w io.Writer) error { return s.document().ToXML(w) }

// Network is a federation: one kernel peer plus one resource peer per
// docking point. By default the peers live in process and the wire is
// the in-process transport; set Transport to a dialed session (DialTCP)
// to validate against remote peers instead.
type Network struct {
	Kernel     *axml.Kernel
	GlobalType *schema.EDTD
	Peers      map[string]*ResourcePeer
	Stats      Stats

	// ChunkSize is the fragment frame budget in bytes: larger chunks
	// cost fewer frames (less framing/handoff overhead) but more peer
	// memory and more wasted bytes when a fragment is rejected
	// mid-transfer. 0 means DefaultChunkSize; any negative value
	// (canonically Unchunked) ships each document as a single frame.
	// Verdicts and message counts do not depend on it.
	ChunkSize int

	// Window is the per-stream credit window in chunks: how many unacked
	// chunks a sender may pipeline before parking for the receiver's
	// cumulative ack. 0 means DefaultWindow; 1 degenerates to
	// stop-and-wait; negative is refused with ErrInvalidWindow when the
	// session is built. Verdicts, message counts, and Stats byte totals
	// are invariant under it — only latency, sender-side rejection
	// savings (see Stats.BytesSaved), and peer memory change. Combined
	// with MaxInflight it bounds the kernel peer's buffered fragment
	// memory at MaxInflight·Window·ChunkSize bytes (each open stream may
	// hold a full window of unconsumed chunks).
	Window int

	// Transport, when non-nil, is the session the kernel peer validates
	// over — typically DialTCP's federation of remote hosts. When nil,
	// validation runs over the in-process transport against Peers.
	Transport transport.Session

	// MaxInflight bounds how many fragment transfers the kernel peer
	// keeps open concurrently during centralized validation: streams
	// are consumed strictly in kernel order, and up to MaxInflight-1
	// upcoming streams are opened ahead to hide per-transfer latency.
	// 0 opens every docking point's stream up front. Verdicts and
	// Stats are invariant under it (credit-window backpressure holds
	// each opened stream at no more than Window un-acked chunks, so the
	// combined buffered-memory bound is MaxInflight·Window·ChunkSize
	// bytes — see Window).
	MaxInflight int

	// Reconnect is the live session's recovery policy: when a docking
	// point's edit feed dies, the kernel peer resubscribes from its
	// replica's version with exponential backoff instead of giving up.
	// The zero value disables reconnection (a feed error is terminal,
	// the pre-fault-tolerance behavior).
	Reconnect ReconnectPolicy

	// Redial, when set, dials a fresh session to the federation's hosts
	// — the live session's recovery path when resubscribing on the
	// existing (dead) session fails. DialTCP sets it automatically to
	// redial the same address map.
	Redial func() (transport.Session, error)

	// Obs, when non-nil, receives the federation's telemetry: fragment
	// lifecycle latency, per-document validation timing, live-session
	// health transitions. It is threaded into every session this network
	// dials or serves, so transport-level metrics land in the same
	// collector. Nil (the default) is the no-op sink.
	Obs *obs.Collector

	// Tap, when non-nil, is the flight-recorder seam threaded into every
	// session this network dials, serves, or runs in process: each
	// encoded/decoded frame (or, in process, the frame the event would
	// put on the wire) is handed to it as raw bytes. Nil (the default)
	// records nothing.
	Tap transport.Tap

	// OnWireError, when non-nil, is handed to ServeTCP's host as its
	// abnormal-session hook — the serving side's postmortem-dump
	// trigger. Must be safe for concurrent use.
	OnWireError func(error)

	compileOnce sync.Once
	machine     *stream.Machine
}

// ReconnectPolicy governs live-feed recovery: exponential backoff with
// jitter between resubscription attempts.
type ReconnectPolicy struct {
	// MaxAttempts is the number of resubscription attempts per outage
	// before the docking point is declared down. 0 disables
	// reconnection entirely.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 10ms); each failed
	// attempt doubles it up to MaxDelay (default 1s). The actual sleep
	// is jittered uniformly over [delay/2, delay] so a federation of
	// subscribers does not reconnect in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed seeds the jitter; 0 means 1 (fully deterministic either
	// way, which is what lets the chaos corpus replay runs exactly).
	Seed int64
}

// delay computes the jittered backoff before attempt (0-based).
func (pol ReconnectPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	base, ceil := pol.BaseDelay, pol.MaxDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = time.Second
	}
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// chunkBudget resolves the configured chunk size: positive is the frame
// budget, zero the default, and any negative value means Unchunked — a
// mistyped negative must not silently fall back to the default.
func (n *Network) chunkBudget() int {
	switch {
	case n.ChunkSize > 0:
		return n.ChunkSize
	case n.ChunkSize < 0:
		return math.MaxInt
	default:
		return DefaultChunkSize
	}
}

// window validates the configured credit window at session-build time:
// a negative window is a configuration error, refused with a typed
// error instead of surfacing later as a hang or protocol failure.
func (n *Network) window() (int, error) {
	if n.Window < 0 {
		return 0, fmt.Errorf("p2p: window %d: %w", n.Window, ErrInvalidWindow)
	}
	return n.Window, nil
}

// NewNetwork builds a federation for the kernel; documents and local
// types are attached per function with AddPeer.
func NewNetwork(kernel *axml.Kernel, global *schema.EDTD) *Network {
	return &Network{
		Kernel:     kernel,
		GlobalType: global,
		Peers:      map[string]*ResourcePeer{},
	}
}

// GlobalMachine returns the kernel peer's compiled validator for the
// global type.
func (n *Network) GlobalMachine() *stream.Machine {
	n.compileOnce.Do(func() { n.machine = stream.Compile(n.GlobalType) })
	return n.machine
}

// AddPeer attaches a resource peer for the given docking point.
func (n *Network) AddPeer(fn string, doc *xmltree.Tree, local *schema.EDTD) error {
	if n.Kernel.FuncIndex(fn) < 0 {
		return fmt.Errorf("p2p: kernel has no docking point %s", fn)
	}
	n.Peers[fn] = &ResourcePeer{Func: fn, Doc: doc, Type: local}
	return nil
}

// peers resolves every docking point to its peer, failing on gaps.
func (n *Network) peers() ([]*ResourcePeer, error) {
	funcs := n.Kernel.Funcs()
	out := make([]*ResourcePeer, len(funcs))
	for i, f := range funcs {
		peer, ok := n.Peers[f]
		if !ok {
			return nil, fmt.Errorf("p2p: no peer for %s", f)
		}
		out[i] = peer
	}
	return out, nil
}

// localSession builds the in-process transport over this network's own
// peers; override maps docking points to replacement documents (the
// collaborative-edit protocols validate a proposed document without
// committing it).
func (n *Network) localSession(override map[string]*xmltree.Tree) (transport.Session, error) {
	peers, err := n.peers()
	if err != nil {
		return nil, err
	}
	win, err := n.window()
	if err != nil {
		return nil, err
	}
	srcs := make(map[string]transport.Source, len(peers))
	for _, p := range peers {
		srcs[p.Func] = &peerSource{peer: p, doc: override[p.Func], obs: n.Obs}
	}
	return &transport.InProc{Sources: srcs, Chunk: n.chunkBudget(), Window: win, Tap: n.Tap}, nil
}

// session resolves the wire validation runs over: the externally dialed
// Transport when set, the in-process loopback otherwise.
func (n *Network) session() (transport.Session, error) {
	if n.Transport != nil {
		return n.Transport, nil
	}
	return n.localSession(nil)
}

// Digest fingerprints the federation's design — the kernel document and
// the shape of the global type — so a TCP hello refuses to pair a serve
// and a join running different designs. Each section is prefixed with
// its element count, so section markers can never be mistaken for
// content (a start literally named "names" must not collide with the
// names section of another design).
func (n *Network) Digest() []byte {
	starts := n.GlobalType.Starts
	names := n.GlobalType.SpecializedNames()
	sort.Strings(names)
	parts := []string{"kernel", n.Kernel.Tree().String(),
		"starts", strconv.Itoa(len(starts))}
	parts = append(parts, starts...)
	parts = append(parts, "names", strconv.Itoa(len(names)))
	parts = append(parts, names...)
	return transport.Digest(parts...)
}

// HostSources adapts every attached peer to the transport's sender
// surface: the docking-point map a host serves — directly for a
// single-design host (ServeTCP), or as one tenant of a multi-tenant
// registry. Each source reads the peer's current document at call time,
// so live edits are served without re-wiring.
func (n *Network) HostSources() map[string]transport.Source {
	srcs := make(map[string]transport.Source, len(n.Peers))
	for fn, p := range n.Peers {
		srcs[fn] = &peerSource{peer: p, obs: n.Obs}
	}
	return srcs
}

// ResidentEstimate approximates the bytes a host pins by keeping this
// network's serving state resident: the kernel document plus every
// peer's current document, in the flat XML byte measure used
// throughout. Compiled validators and tree overhead are not counted —
// the estimate is a budget token for admission control, not an
// allocator measurement.
func (n *Network) ResidentEstimate() int64 {
	total := int64(n.Kernel.Tree().XMLSize())
	for _, p := range n.Peers {
		total += int64(p.CurrentDoc().XMLSize())
	}
	return total
}

// ServeTCP hosts this network's resource peers on ln: remote kernel
// peers can dial it, request verdicts, and pull fragment streams. A
// host may serve any subset of the federation (attach only the local
// docking points); close the returned host to stop.
// The host's Window caps every joining client's credit-window grant.
func (n *Network) ServeTCP(ln net.Listener) *transport.Host {
	return transport.NewHost(ln, transport.HostConfig{Digest: n.Digest(), Sources: n.HostSources(),
		Window: max(n.Window, 0), Obs: n.Obs, Tap: n.Tap, OnError: n.OnWireError})
}

// DialTCP connects the kernel peer to the hosts serving its docking
// points: addrs maps each function to its host's address, and functions
// sharing an address share one session. The returned session carries
// this network's design digest and chunk budget; assign it to
// n.Transport and close it when done. As a side effect it wires
// n.Redial to redial the same address map, so a live session under a
// Reconnect policy can recover from a dropped host connection.
func (n *Network) DialTCP(addrs map[string]string) (transport.Session, error) {
	n.Redial = func() (transport.Session, error) { return n.dialTCP(addrs) }
	return n.dialTCP(addrs)
}

func (n *Network) dialTCP(addrs map[string]string) (transport.Session, error) {
	win, err := n.window()
	if err != nil {
		return nil, err
	}
	cfg := transport.Config{Digest: n.Digest(), Chunk: n.chunkBudget(), Window: win, Obs: n.Obs, Tap: n.Tap}
	byAddr := map[string]*transport.Conn{}
	multi := transport.Multi{}
	for _, fn := range n.Kernel.Funcs() {
		addr, ok := addrs[fn]
		if !ok {
			multi.Close()
			return nil, fmt.Errorf("p2p: no host address for docking point %s", fn)
		}
		conn, ok := byAddr[addr]
		if !ok {
			var err error
			conn, err = transport.Dial(addr, cfg)
			if err != nil {
				multi.Close()
				return nil, fmt.Errorf("p2p: dial %s: %w", addr, err)
			}
			byAddr[addr] = conn
		}
		multi[fn] = conn
	}
	return multi, nil
}

// ValidateDistributed runs the distributed protocol: every peer validates
// locally in parallel and sends a verdict-only message. The result is the
// conjunction of the local verdicts. The round short-circuits: the first
// failing verdict cancels the outstanding peers (canceled peers abort
// mid-document and send nothing), so traffic is at most n verdict
// messages and Stats counts exactly the messages delivered.
func (n *Network) ValidateDistributed() (bool, error) {
	return n.ValidateDistributedContext(context.Background())
}

// ValidateDistributedContext is ValidateDistributed under an external
// context; canceling it aborts the round.
func (n *Network) ValidateDistributedContext(ctx context.Context) (bool, error) {
	sess, err := n.session()
	if err != nil {
		return false, err
	}
	funcs := n.Kernel.Funcs()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		m   message
		err error
	}
	ch := make(chan result, len(funcs))
	var wg sync.WaitGroup
	for _, f := range funcs {
		wg.Add(1)
		go func(fn string) {
			defer wg.Done()
			if ctx.Err() != nil {
				return // round already decided: send nothing
			}
			v, verr := sess.Verdict(ctx, fn)
			if ctx.Err() != nil {
				return // canceled mid-validation: nothing delivered
			}
			if verr != nil {
				ch <- result{err: verr}
				return
			}
			ch <- result{m: verdictMessage(fn, v)}
		}(f)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	all := true
	delivered := 0
	var transErr error
	for res := range ch {
		if res.err != nil {
			if transErr == nil {
				transErr = res.err
				cancel()
			}
			continue
		}
		delivered++
		n.Stats.addMessage(res.m.wireSize())
		if !res.m.verdict {
			all = false
			cancel() // short-circuit the peers still running
		}
	}
	if transErr != nil {
		return false, fmt.Errorf("p2p: transport: %w", transErr)
	}
	if all && delivered < len(funcs) {
		// Verdicts are missing and none of them failed, so the caller's
		// context must have ended mid-round (our own short-circuit cancel
		// always comes with a failing verdict). A fully delivered round is
		// conclusive regardless of the context's state.
		return false, ctx.Err()
	}
	return all, nil
}

// ValidateCentralized runs the centralized protocol: every peer ships its
// whole document in chunk-budget frames, and the kernel peer validates
// the extension extT(t1..tn) against the global type by streaming its own
// kernel events with each docking point spliced from the frames as they
// arrive. Neither the extension nor any single fragment is ever
// materialized at the kernel peer — its memory is O(chunk + depth) — and
// an invalid document is rejected mid-transfer: frames past the failure
// are never pulled (a reject halts the sender), and their bytes are
// recorded in Stats.BytesSaved. Traffic on a valid federation: n full
// documents.
func (n *Network) ValidateCentralized() (bool, error) {
	return n.ValidateCentralizedContext(context.Background())
}

// ValidateCentralizedContext is ValidateCentralized under an external
// context: canceling it aborts the round *including* in-flight fragment
// transfers — the walk stops pulling frames, rejects halt the senders,
// and nothing past the cancellation point is serialized.
func (n *Network) ValidateCentralizedContext(ctx context.Context) (bool, error) {
	sess, err := n.session()
	if err != nil {
		return false, err
	}
	return n.centralizedOverSession(ctx, sess)
}

// centralizedOverSession validates extT against the global type with
// every docking point's document pulled as a chunked stream over sess,
// in one pass at the kernel peer. It returns the verdict; a transport
// failure (as opposed to an invalid document) is the returned error.
func (n *Network) centralizedOverSession(parent context.Context, sess transport.Session) (bool, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel() // releases every in-process sender and pending open
	funcs := n.Kernel.Funcs()
	idx := make(map[string]int, len(funcs))
	for i, f := range funcs {
		idx[f] = i
	}
	window := n.MaxInflight
	if window <= 0 {
		window = len(funcs)
	}
	frags := make([]transport.Fragment, len(funcs))
	delivered := make([]int, len(funcs))
	full := make([]bool, len(funcs))
	opened := 0
	var transErr error
	// openThrough opens streams up to index k (inclusive), in kernel
	// order — the consumption order — so prefetched transfers are the
	// next ones the walk will need.
	openStart := make([]int64, len(funcs))
	openThrough := func(k int) {
		for opened <= k && opened < len(funcs) && transErr == nil {
			start := n.Obs.Nanos()
			frag, err := sess.Open(ctx, funcs[opened])
			if err != nil {
				transErr = err
				return
			}
			n.Obs.Observe(obs.HFragmentOpenNs, n.Obs.Nanos()-start)
			openStart[opened] = start
			frags[opened] = frag
			opened++
		}
	}
	openThrough(window - 1)
	r := n.GlobalMachine().NewRunner()
	err := stream.StreamKernel(n.Kernel, r, func(fn string, h stream.Handler) error {
		i, ok := idx[fn]
		if !ok {
			return fmt.Errorf("p2p: unknown docking point %s", fn)
		}
		openThrough(i + window - 1)
		if transErr != nil {
			return transErr
		}
		frag := frags[i]
		n.Stats.addMessage(len(fn) + 1) // message envelope
		f := stream.NewInnerFeeder(h)
		for {
			if cerr := ctx.Err(); cerr != nil {
				// The round was canceled mid-transfer (SIGINT on a CLI
				// join, a dead deadline upstream): reject the stream so
				// the sender halts now, not at its next write.
				frag.Abort()
				transErr = cerr
				return cerr
			}
			chunk, nerr := frag.Next()
			if nerr == io.EOF {
				full[i] = true
				n.Obs.Observe(obs.HFragmentTransferNs, n.Obs.Nanos()-openStart[i])
				break
			}
			if nerr != nil {
				transErr = nerr
				return nerr
			}
			n.Stats.addFrame(len(chunk))
			delivered[i] += len(chunk)
			if ferr := f.Feed(chunk); ferr != nil {
				frag.Abort() // mid-transfer rejection: halt the sender
				return ferr
			}
		}
		return f.Close()
	})
	if err == nil {
		err = r.Finish()
	}
	r.Release()
	if transErr == nil {
		// Settle the byte accounting: every transfer the verdict cut
		// short — aborted mid-stream or never consumed at all — saved
		// its remaining bytes. Never-opened streams are opened and
		// immediately rejected just to learn their announced size.
		for i := range funcs {
			if full[i] {
				continue
			}
			if frags[i] == nil {
				frag, oerr := sess.Open(ctx, funcs[i])
				if oerr != nil {
					transErr = oerr
					break
				}
				frags[i] = frag
			}
			frags[i].Abort()
			saved := frags[i].Size() - delivered[i]
			n.Stats.addSaved(saved)
			n.Obs.Add(obs.CBytesSavedObs, int64(saved))
		}
	}
	if transErr != nil {
		return false, fmt.Errorf("p2p: transport: %w", transErr)
	}
	return err == nil, nil
}

// Materialize returns the extension document (for inspection), built
// from each peer's current document — the live editor's tree when one
// is attached.
func (n *Network) Materialize() (*xmltree.Tree, error) {
	ext := map[string]*xmltree.Tree{}
	for f, p := range n.Peers {
		ext[f] = p.CurrentDoc()
	}
	return n.Kernel.Extend(ext)
}

// UpdatePeer is the collaborative-editing operation of the paper's
// introduction (WebDAV / XML Fragment Interchange): a resource peer
// replaces its fragment. With a *local* typing the edit is admissible iff
// the new fragment validates against the peer's own type — no other peer
// and no global document is touched. The verdict message is the only
// traffic recorded.
//
// The edit is applied only when locally valid; the previous document is
// returned so callers can inspect or restore it.
func (n *Network) UpdatePeer(fn string, newDoc *xmltree.Tree) (admitted bool, previous *xmltree.Tree, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, nil, fmt.Errorf("p2p: no peer for %s", fn)
	}
	verdict := peer.Machine().ValidateTree(newDoc) == nil
	n.Stats.addMessage(verdictMessage(fn, verdict).wireSize())
	if !verdict {
		return false, peer.Doc, nil
	}
	previous = peer.Doc
	peer.Doc = newDoc
	return true, previous, nil
}

// UpdatePeerCentralized is the same edit under centralized validation:
// the new fragment is shipped to the kernel peer, every other fragment is
// pulled, and the whole extension is re-validated chunk by chunk; on
// failure the edit is rolled back — and because rejection happens
// mid-transfer, a bad edit deep in the kernel walk saves every byte the
// kernel peer no longer needs to pull. It always runs against this
// network's own peers (the edit mutates them), regardless of Transport.
func (n *Network) UpdatePeerCentralized(fn string, newDoc *xmltree.Tree) (admitted bool, err error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return false, fmt.Errorf("p2p: no peer for %s", fn)
	}
	sess, err := n.localSession(map[string]*xmltree.Tree{fn: newDoc})
	if err != nil {
		return false, err
	}
	ok, err = n.centralizedOverSession(context.Background(), sess)
	if err != nil || !ok {
		return false, err
	}
	peer.Doc = newDoc
	return true, nil
}
