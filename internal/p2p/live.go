package p2p

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dxml/internal/live"
	"dxml/internal/obs"
	"dxml/internal/stream"
	"dxml/internal/transport"
	"dxml/internal/xmltree"
)

// This file is the live session mode: the federation outliving a single
// validation round. Editing peers attach a live.Editor (AttachEditor)
// and publish subtree edits; the kernel peer opens a LiveFederation
// (OpenLive), which subscribes to every docking point's edit log over
// the session's transport, replays each edit onto a prefix-labeled
// replica, and maintains the global verdict by incremental
// revalidation (stream.Incremental) — re-checking only the edited
// subtree and the ancestor chain whose summaries actually change,
// instead of revalidating the extension from scratch. After each
// applied edit the kernel peer reports the fresh verdict back to the
// editing site (the wire's verdict-update frames), so both ends of the
// federation always agree on whether the distributed document is
// currently valid.

// AttachEditor wraps fn's current document in a live editor and makes
// the docking point subscribable. The editor becomes authoritative for
// the peer's document (the one-shot protocols read its current tree;
// an edit landing between a transfer's size announcement and its
// serialization can skew one-shot accounting, which is why live
// consumers should use OpenLive's atomic snapshot-plus-log cut).
func (n *Network) AttachEditor(fn string) (*live.Editor, error) {
	peer, ok := n.Peers[fn]
	if !ok {
		return nil, fmt.Errorf("p2p: no peer for %s", fn)
	}
	if peer.Live == nil {
		peer.Live = live.NewEditor(peer.Doc)
	}
	return peer.Live, nil
}

// --- edit wire conversion ---

// editToFrame serializes an edit for the wire: the payload subtree
// travels as XML through the allocation-free emitter, the address as
// raw keys — O(‖edit‖ + depth) bytes total.
func editToFrame(e live.Edit) transport.EditFrame {
	f := transport.EditFrame{Version: e.Version, Op: uint8(e.Op), Addr: e.Addr}
	if e.Doc != nil {
		var b bytes.Buffer
		e.Doc.ToXML(&b) // cannot fail on a Buffer
		f.Doc = b.Bytes()
	}
	return f
}

// frameToEdit parses one received edit.
func frameToEdit(f transport.EditFrame) (live.Edit, error) {
	e := live.Edit{Version: f.Version, Op: live.Op(f.Op), Addr: append([]uint64(nil), f.Addr...)}
	if len(f.Doc) > 0 {
		doc, err := xmltree.FromXML(bytes.NewReader(f.Doc))
		if err != nil {
			return live.Edit{}, fmt.Errorf("p2p: edit payload: %w", err)
		}
		e.Doc = doc
	}
	return e, nil
}

// editorFeedSrc is the hosted side of one subscription: an atomic cut
// of the editor's state (the encoded snapshot is taken under the
// editor's lock) plus the blocking log behind it. It implements
// transport.LiveFeedSrc. A resumed feed has a nil snapshot: the
// subscriber kept its replica and only needs the log suffix.
type editorFeedSrc struct {
	ed      *live.Editor
	snap    []byte
	version uint64
}

func (s *editorFeedSrc) Version() uint64 { return s.version }
func (s *editorFeedSrc) Size() int       { return len(s.snap) }

func (s *editorFeedSrc) Serialize(w io.Writer) error {
	_, err := w.Write(s.snap)
	return err
}

func (s *editorFeedSrc) NextEdit(ctx context.Context, after uint64) (transport.EditFrame, error) {
	e, err := s.ed.NextEdit(ctx, after)
	if err != nil {
		return transport.EditFrame{}, err
	}
	return editToFrame(e), nil
}

func (s *editorFeedSrc) NoteVerdict(version uint64, valid bool) {
	s.ed.NoteVerdict(version, valid)
}

func (s *editorFeedSrc) Close() {}

// OpenLive implements transport.LiveSource for hosted peers with an
// attached editor.
func (s *peerSource) OpenLive(ctx context.Context) (transport.LiveFeedSrc, error) {
	ed := s.peer.Live
	if ed == nil {
		return nil, fmt.Errorf("p2p: peer %s has no live editor", s.peer.Func)
	}
	snap, version := ed.EncodeSnapshot()
	return &editorFeedSrc{ed: ed, snap: snap, version: version}, nil
}

// OpenLiveSince implements transport.ResumableSource: when the editor's
// log still reaches back to `after`, the subscriber resumes by suffix —
// no snapshot travels. When the log was compacted past it, the fallback
// is a fresh full cut, decided atomically under the editor's lock
// (live.Editor.CutSince), so no edit can slip between the decision and
// the cut.
func (s *peerSource) OpenLiveSince(ctx context.Context, after uint64) (transport.LiveFeedSrc, bool, error) {
	ed := s.peer.Live
	if ed == nil {
		return nil, false, fmt.Errorf("p2p: peer %s has no live editor", s.peer.Func)
	}
	snap, version, resumed := ed.CutSince(after)
	return &editorFeedSrc{ed: ed, snap: snap, version: version}, resumed, nil
}

// Health classifies a docking point's feed state in a LiveUpdate. The
// zero value is HealthLive, so ordinary per-edit updates are unchanged
// by the fault-tolerance layer.
type Health int

const (
	// HealthLive: the feed is healthy; this update reports an applied
	// edit.
	HealthLive Health = iota
	// HealthStale: the feed died and reconnection is under way. The
	// maintained verdict still reflects the last applied edit — it may
	// be behind the editing site — and no edits flow until recovery.
	HealthStale
	// HealthRecovered: the feed resubscribed (Resumed tells whether by
	// log suffix or snapshot fallback); edits flow again and the
	// verdict is current as of Version.
	HealthRecovered
	// HealthDown: recovery failed terminally (attempts exhausted, or
	// reconnection disabled); Err carries the cause and no further
	// updates arrive from this docking point.
	HealthDown
)

func (h Health) String() string {
	switch h {
	case HealthLive:
		return "live"
	case HealthStale:
		return "stale"
	case HealthRecovered:
		return "recovered"
	case HealthDown:
		return "down"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// LiveUpdate reports one applied edit, a feed health transition, or a
// terminal feed error to the kernel peer's consumer.
type LiveUpdate struct {
	// Fn is the docking point the edit came from; Version its log
	// version there; Op the operation applied.
	Fn      string
	Version uint64
	Op      string
	// Valid is the global verdict after applying the edit; Changed
	// reports a verdict transition.
	Valid   bool
	Changed bool
	// Revalidated and Skipped are the incremental revalidator's byte
	// split for this edit; WireBytes is what the edit cost on the wire.
	Revalidated int
	Skipped     int
	WireBytes   int
	// Health is the feed transition this update reports: HealthLive for
	// ordinary per-edit updates, HealthStale when the feed drops,
	// HealthRecovered after a successful resubscription, HealthDown
	// when recovery is abandoned.
	Health Health
	// Resumed is set on a HealthRecovered update when the feed caught
	// up by log suffix (no snapshot re-shipped); false means the
	// snapshot fallback rebuilt the replica.
	Resumed bool
	// Err, when non-nil, is a terminal error on this docking point's
	// feed (Health is HealthDown); no further updates arrive from it.
	Err error
}

// verdictUpdateWireSize is the fixed frame cost of one verdict-update
// message (type + id + version + verdict), identical on both wires.
const verdictUpdateWireSize = 14

// LiveFederation is the kernel peer's live session: replicas and the
// incremental result tree, advanced by the docking points' edit feeds.
type LiveFederation struct {
	n    *Network
	sess transport.Session
	own  bool // session built for this live run: close it on Close

	ctx         context.Context
	cancel      context.CancelFunc
	wg          sync.WaitGroup
	once        sync.Once
	updatesOnce sync.Once

	mu       sync.Mutex
	inc      *stream.Incremental
	replicas map[string]*live.Doc
	feeds    map[string]transport.EditFeed
	extra    map[string]transport.Session // per-fn redialed sessions (reconnects), closed on Close
	stale    map[string]bool              // docking points currently in outage
	valid    bool

	rngMu sync.Mutex
	rng   *rand.Rand // reconnect backoff jitter

	updates chan LiveUpdate
}

// OpenLive starts the live session: it subscribes to every docking
// point, pulls each fragment's keyed snapshot (chunked, with the same
// backpressure as any transfer), builds the extension's incremental
// result tree, and starts draining edits. The initial verdict is
// available immediately (Valid); per-edit updates flow on Updates until
// Close. Edits from different docking points are serialized through one
// lock, so the maintained verdict is always the verdict of a real
// interleaving of the feeds.
func (n *Network) OpenLive(ctx context.Context) (*LiveFederation, error) {
	sess, err := n.session()
	if err != nil {
		return nil, err
	}
	ls, ok := sess.(transport.LiveSession)
	if !ok {
		return nil, fmt.Errorf("p2p: transport %T does not support live sessions", sess)
	}
	lctx, cancel := context.WithCancel(ctx)
	seed := n.Reconnect.Seed
	if seed == 0 {
		seed = 1
	}
	lv := &LiveFederation{
		n: n, sess: sess, own: n.Transport == nil,
		ctx: lctx, cancel: cancel,
		replicas: map[string]*live.Doc{},
		feeds:    map[string]transport.EditFeed{},
		extra:    map[string]transport.Session{},
		stale:    map[string]bool{},
		rng:      rand.New(rand.NewSource(seed)),
		updates:  make(chan LiveUpdate, 16),
	}
	fail := func(err error) (*LiveFederation, error) {
		for _, f := range lv.feeds {
			f.Close()
		}
		cancel()
		return nil, err
	}
	frags := map[string]*xmltree.Tree{}
	for _, fn := range n.Kernel.Funcs() {
		feed, err := ls.Subscribe(lctx, fn)
		if err != nil {
			return fail(fmt.Errorf("p2p: subscribe %s: %w", fn, err))
		}
		lv.feeds[fn] = feed
		n.Stats.addMessage(len(fn) + 1) // subscription envelope
		var buf bytes.Buffer
		for {
			chunk, cerr := feed.NextChunk()
			if cerr == io.EOF {
				break
			}
			if cerr != nil {
				return fail(fmt.Errorf("p2p: snapshot %s: %w", fn, cerr))
			}
			n.Stats.addFrame(len(chunk))
			buf.Write(chunk)
		}
		doc, err := live.DecodeSnapshot(&buf)
		if err != nil {
			return fail(fmt.Errorf("p2p: snapshot %s: %w", fn, err))
		}
		if doc.Version() != feed.Base() {
			return fail(fmt.Errorf("p2p: snapshot %s: version %d does not match announced cut %d",
				fn, doc.Version(), feed.Base()))
		}
		lv.replicas[fn] = doc
		frags[fn] = doc.Tree()
	}
	inc, err := n.GlobalMachine().NewKernelIncremental(n.Kernel, frags)
	if err != nil {
		return fail(err)
	}
	lv.inc = inc
	lv.valid = inc.Valid()
	for fn := range lv.feeds {
		lv.wg.Add(1)
		go lv.drain(fn)
	}
	// When every feed has terminated (all hosts gone, or each hit a
	// terminal error) no more updates can arrive: close the channel so
	// consumers ranging over Updates return instead of hanging. Every
	// emit completes before its drain's wg slot releases, so the close
	// cannot race a send; Close's own close goes through the same Once.
	go func() {
		lv.wg.Wait()
		lv.updatesOnce.Do(func() { close(lv.updates) })
	}()
	return lv, nil
}

// Valid returns the current global verdict.
func (lv *LiveFederation) Valid() bool {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.valid
}

// Stale lists the docking points currently in outage: their feeds died
// and reconnection is still under way, so the maintained verdict may
// lag their editing sites. Empty means the verdict is fully live.
func (lv *LiveFederation) Stale() []string {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	var out []string
	for fn, s := range lv.stale {
		if s {
			out = append(out, fn)
		}
	}
	sort.Strings(out)
	return out
}

func (lv *LiveFederation) setStale(fn string, stale bool) {
	lv.mu.Lock()
	lv.stale[fn] = stale
	lv.mu.Unlock()
}

// Fragment materializes the kernel peer's current replica of fn.
func (lv *LiveFederation) Fragment(fn string) (*xmltree.Tree, error) {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	d, ok := lv.replicas[fn]
	if !ok {
		return nil, fmt.Errorf("p2p: no docking point %s", fn)
	}
	return d.Tree(), nil
}

// Extension materializes the current extension document.
func (lv *LiveFederation) Extension() *xmltree.Tree {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.inc.Tree()
}

// Updates is the per-edit stream. It is closed by Close.
func (lv *LiveFederation) Updates() <-chan LiveUpdate { return lv.updates }

// drain applies one docking point's edits for the session's lifetime,
// recovering from feed failures when a Reconnect policy is set: the
// verdict is marked stale, the subscription is reopened from the
// replica's version with backoff, and the log suffix (or, after
// compaction, a fresh snapshot) brings the replica back in sync.
func (lv *LiveFederation) drain(fn string) {
	defer lv.wg.Done()
	lv.mu.Lock()
	feed := lv.feeds[fn]
	replica := lv.replicas[fn]
	lv.mu.Unlock()
	for {
		ef, err := feed.NextEdit(lv.ctx)
		if err != nil {
			if lv.ctx.Err() != nil {
				return // session closing: not an outage
			}
			nf, doc, rerr := lv.recover(fn, replica, err)
			if rerr != nil {
				if lv.ctx.Err() == nil {
					lv.n.Obs.Add(obs.CHealthDown, 1)
					lv.emit(LiveUpdate{Fn: fn, Version: replica.Version(), Health: HealthDown, Err: rerr})
				}
				return
			}
			feed.Close() // best effort; the transport under it is gone
			feed, replica = nf, doc
			lv.mu.Lock()
			lv.feeds[fn] = nf
			lv.mu.Unlock()
			continue
		}
		if ef.Version <= replica.Version() {
			// Duplicate delivery: resumption (and fault injection) makes
			// the edit stream at-least-once, and versions make redelivery
			// harmless — skip without re-applying or re-counting, so a
			// faulted run's accounting converges to the fault-free run's.
			continue
		}
		up, err := lv.apply(fn, replica, ef)
		if err != nil {
			// A malformed or inapplicable edit means the replica can no
			// longer track this peer: surface it and stop the feed.
			lv.n.Obs.Add(obs.CHealthDown, 1)
			lv.emit(LiveUpdate{Fn: fn, Version: ef.Version, Health: HealthDown, Err: err})
			return
		}
		if serr := feed.SendVerdict(up.Version, up.Valid); serr == nil {
			lv.n.Stats.addMessage(verdictUpdateWireSize)
		}
		lv.emit(up)
	}
}

// recover reopens fn's subscription after a feed failure. It returns
// the new feed and the (possibly rebuilt) replica, or the terminal
// error once the policy's attempts are exhausted. Recovery traffic is
// not added to the protocol byte counters — see Stats.Reconnects.
func (lv *LiveFederation) recover(fn string, replica *live.Doc, cause error) (transport.EditFeed, *live.Doc, error) {
	pol := lv.n.Reconnect
	if pol.MaxAttempts <= 0 {
		return nil, nil, cause // reconnection disabled: the failure is terminal
	}
	lv.setStale(fn, true)
	lv.n.Obs.Add(obs.CHealthDown, 1)
	lv.emit(LiveUpdate{Fn: fn, Version: replica.Version(), Valid: lv.Valid(), Health: HealthStale})
	lastErr := cause
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		lv.rngMu.Lock()
		d := pol.delay(attempt, lv.rng)
		lv.rngMu.Unlock()
		lv.n.Obs.Observe(obs.HReconnectBackoffNs, int64(d))
		if !lv.sleep(d) {
			return nil, nil, lv.ctx.Err()
		}
		feed, err := lv.resubscribe(fn, replica.Version())
		if err != nil {
			lastErr = err
			continue
		}
		// Drain the snapshot phase: empty for a suffix resume, the
		// fallback cut otherwise.
		if feed.Resumed() {
			if err := drainChunks(feed, nil); err != nil {
				feed.Close()
				lastErr = err
				continue
			}
			lv.n.Stats.addReconnect()
			lv.n.Obs.Add(obs.CReconnects, 1)
			lv.n.Obs.Add(obs.CHealthUp, 1)
			lv.setStale(fn, false)
			lv.emit(LiveUpdate{Fn: fn, Version: replica.Version(), Valid: lv.Valid(), Health: HealthRecovered, Resumed: true})
			return feed, replica, nil
		}
		doc, err := lv.rebuild(fn, feed)
		if err != nil {
			feed.Close()
			lastErr = err
			continue
		}
		lv.n.Stats.addReconnect()
		lv.n.Obs.Add(obs.CReconnects, 1)
		lv.n.Obs.Add(obs.CHealthUp, 1)
		lv.setStale(fn, false)
		lv.emit(LiveUpdate{Fn: fn, Version: doc.Version(), Valid: lv.Valid(), Health: HealthRecovered})
		return feed, doc, nil
	}
	return nil, nil, fmt.Errorf("p2p: %s: reconnect failed after %d attempts: %w", fn, pol.MaxAttempts, lastErr)
}

// sleep waits d or until the session closes; false means closed.
func (lv *LiveFederation) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-lv.ctx.Done():
		return false
	}
}

// resubscribe reopens fn's feed from `after`: first on the session
// already serving fn (free when the fault was per-feed and the session
// survived), then — if the network can redial — on a fresh session,
// which replaces fn's session for the rest of the run.
func (lv *LiveFederation) resubscribe(fn string, after uint64) (transport.EditFeed, error) {
	var lastErr error
	if rs, ok := lv.sessionFor(fn).(transport.ResumableSession); ok {
		feed, err := rs.Resubscribe(lv.ctx, fn, after)
		if err == nil {
			return feed, nil
		}
		lastErr = err
	} else {
		lastErr = fmt.Errorf("p2p: session for %s does not support resumed subscriptions", fn)
	}
	if lv.n.Redial == nil {
		return nil, lastErr
	}
	ns, err := lv.n.Redial()
	if err != nil {
		return nil, err
	}
	rs, ok := ns.(transport.ResumableSession)
	if !ok {
		ns.Close()
		return nil, fmt.Errorf("p2p: redialed session does not support resumed subscriptions")
	}
	feed, err := rs.Resubscribe(lv.ctx, fn, after)
	if err != nil {
		ns.Close()
		return nil, err
	}
	lv.mu.Lock()
	if old := lv.extra[fn]; old != nil {
		old.Close()
	}
	lv.extra[fn] = ns
	lv.mu.Unlock()
	return feed, nil
}

func (lv *LiveFederation) sessionFor(fn string) transport.Session {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if s := lv.extra[fn]; s != nil {
		return s
	}
	return lv.sess
}

// drainChunks consumes a feed's snapshot phase to EOF, appending to buf
// when non-nil.
func drainChunks(feed transport.EditFeed, buf *bytes.Buffer) error {
	for {
		chunk, err := feed.NextChunk()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if buf != nil {
			buf.Write(chunk)
		}
	}
}

// rebuild replaces fn's replica from a fresh snapshot cut — the
// fallback when the editing site compacted its log past the replica's
// version. The incremental result tree absorbs it as a fragment-root
// replace, so the maintained verdict is exact immediately.
func (lv *LiveFederation) rebuild(fn string, feed transport.EditFeed) (*live.Doc, error) {
	var buf bytes.Buffer
	if err := drainChunks(feed, &buf); err != nil {
		return nil, err
	}
	doc, err := live.DecodeSnapshot(&buf)
	if err != nil {
		return nil, fmt.Errorf("p2p: snapshot %s: %w", fn, err)
	}
	if doc.Version() != feed.Base() {
		return nil, fmt.Errorf("p2p: snapshot %s: version %d does not match announced cut %d",
			fn, doc.Version(), feed.Base())
	}
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if err := lv.inc.Replace(fn, nil, doc.Tree()); err != nil {
		return nil, err
	}
	lv.replicas[fn] = doc
	lv.valid = lv.inc.Valid()
	return doc, nil
}

// apply replays one edit onto the replica and the result tree.
func (lv *LiveFederation) apply(fn string, replica *live.Doc, ef transport.EditFrame) (LiveUpdate, error) {
	ed, err := frameToEdit(ef)
	if err != nil {
		return LiveUpdate{}, err
	}
	start := lv.n.Obs.Nanos()
	lv.mu.Lock()
	defer lv.mu.Unlock()
	ap, err := replica.Apply(ed)
	if err != nil {
		return LiveUpdate{}, err
	}
	switch ap.Op {
	case live.OpReplace:
		err = lv.inc.Replace(fn, ap.Path, ed.Doc)
	case live.OpInsert:
		err = lv.inc.Insert(fn, ap.Path, ed.Doc)
	case live.OpDelete:
		err = lv.inc.Delete(fn, ap.Path)
	}
	if err != nil {
		return LiveUpdate{}, err
	}
	valid := lv.inc.Valid()
	reval, skipped := lv.inc.LastRecheck()
	up := LiveUpdate{
		Fn: fn, Version: ed.Version, Op: ed.Op.String(),
		Valid: valid, Changed: valid != lv.valid,
		Revalidated: reval, Skipped: skipped, WireBytes: ef.WireSize(),
	}
	lv.valid = valid
	lv.n.Stats.addMessage(ef.WireSize())
	lv.n.Stats.addRecheck(reval, skipped)
	lv.n.Obs.Observe(obs.HEditApplyNs, lv.n.Obs.Nanos()-start)
	lv.n.Obs.Add(obs.CEditsApplied, 1)
	lv.n.Obs.Add(obs.CNodesRevalidated, int64(reval))
	lv.n.Obs.Add(obs.CNodesSkipped, int64(skipped))
	return up, nil
}

// emit delivers an update unless the session is closing.
func (lv *LiveFederation) emit(up LiveUpdate) {
	select {
	case lv.updates <- up:
	case <-lv.ctx.Done():
	}
}

// Close ends the live session: feeds unsubscribe, drains stop, and the
// updates channel closes. The session itself is closed only if it was
// opened for this live run (an externally dialed Network.Transport
// stays open for the caller).
func (lv *LiveFederation) Close() error {
	lv.once.Do(func() {
		lv.cancel()
		lv.wg.Wait() // drains exit via the canceled context
		for _, f := range lv.feeds {
			f.Close()
		}
		for _, s := range lv.extra {
			s.Close() // sessions opened by reconnects
		}
		lv.updatesOnce.Do(func() { close(lv.updates) })
		if lv.own {
			lv.sess.Close()
		}
	})
	return nil
}
