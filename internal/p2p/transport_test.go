package p2p

import (
	"math/rand"
	"net"
	"strings"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/transport"
	"dxml/internal/xmltree"
)

// serveFederation hosts a network's peers on an ephemeral loopback port
// and returns a second network — same kernel, same global type, no
// local documents — whose Transport is a TCP session to it. This is the
// `dxml serve` / `dxml join` topology in miniature.
func serveFederation(t testing.TB, served *Network) (*Network, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := served.ServeTCP(ln)
	joined := NewNetwork(served.Kernel, served.GlobalType)
	joined.ChunkSize = served.ChunkSize
	joined.MaxInflight = served.MaxInflight
	joined.Window = served.Window
	addrs := map[string]string{}
	for _, fn := range served.Kernel.Funcs() {
		addrs[fn] = host.Addr().String()
	}
	sess, err := joined.DialTCP(addrs)
	if err != nil {
		host.Close()
		t.Fatal(err)
	}
	joined.Transport = sess
	return joined, func() {
		sess.Close()
		host.Close()
	}
}

// TestTCPDifferential is the acceptance criterion of the wire
// transport: on the differential corpus (valid and mutated federations
// across chunk sizes, inflight limits, and credit windows), a
// federation validated over real TCP loopback produces verdicts,
// message counts, frame counts, and byte totals — including
// Stats.BytesSaved on mid-transfer rejections — identical to the
// in-process transport. Window 1 degenerates to the old stop-and-wait
// wire, so trial coverage includes it explicitly.
func TestTCPDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	chunks := []int{16, 4096, Unchunked}
	windows := []int{1, 4, 32}
	for trial := 0; trial < 12; trial++ {
		sizes := []int{r.Intn(4), r.Intn(4), r.Intn(4)}
		mutateAt := -1
		if trial%2 == 1 {
			mutateAt = r.Intn(4)
		}
		chunk := chunks[trial%len(chunks)]
		window := windows[(trial/2)%len(windows)]
		maxInflight := trial % 3 // 0 = open all, 1 = strictly sequential, 2 = one ahead
		build := func() *Network {
			n, typing := eurostatSetup(t)
			n.ChunkSize = chunk
			n.MaxInflight = maxInflight
			n.Window = window
			attachValidDocs(t, n, typing, sizes)
			if mutateAt >= 0 {
				// Same seed per transport => identical mutation.
				mr := rand.New(rand.NewSource(int64(trial)))
				mutateTree(mr, n.Peers[n.Kernel.Funcs()[mutateAt]].Doc)
			}
			return n
		}

		local := build()
		localDist, err := local.ValidateDistributed()
		if err != nil {
			t.Fatal(err)
		}
		localDistStats := local.Stats.Totals()
		localCent, err := local.ValidateCentralized()
		if err != nil {
			t.Fatal(err)
		}
		localStats := local.Stats.Totals()

		served := build()
		remote, shutdown := serveFederation(t, served)
		remoteDist, err := remote.ValidateDistributed()
		if err != nil {
			t.Fatal(err)
		}
		remoteDistStats := remote.Stats.Totals()
		remoteCent, err := remote.ValidateCentralized()
		if err != nil {
			t.Fatal(err)
		}
		remoteStats := remote.Stats.Totals()
		shutdown()

		if localDist != remoteDist || localCent != remoteCent {
			t.Fatalf("trial %d (chunk=%d inflight=%d window=%d): verdicts differ across transports: in-process dist=%v cent=%v, tcp dist=%v cent=%v",
				trial, chunk, maxInflight, window, localDist, localCent, remoteDist, remoteCent)
		}
		// The distributed round ships only verdicts; on valid federations
		// the count is exact (short-circuited rounds are scheduling-
		// dependent on every transport, so only the verdict is pinned).
		if localDist && localDistStats != remoteDistStats {
			t.Fatalf("trial %d: distributed stats differ: in-process %+v, tcp %+v",
				trial, localDistStats, remoteDistStats)
		}
		// Centralized deltas must match byte for byte: message envelopes,
		// chunk frames, delivered bytes, and bytes saved by rejection.
		localCentDelta := diffTotals(localStats, localDistStats)
		remoteCentDelta := diffTotals(remoteStats, remoteDistStats)
		if localDist && localCentDelta != remoteCentDelta {
			t.Fatalf("trial %d (chunk=%d inflight=%d window=%d): centralized stats differ:\n in-process %+v\n tcp        %+v",
				trial, chunk, maxInflight, window, localCentDelta, remoteCentDelta)
		}
		if !localDist {
			// The distributed deltas are scheduling-dependent, but the
			// centralized protocol is deterministic even on rejection:
			// compare its deltas directly.
			if localCentDelta != remoteCentDelta {
				t.Fatalf("trial %d (chunk=%d inflight=%d window=%d): centralized stats differ on invalid federation:\n in-process %+v\n tcp        %+v",
					trial, chunk, maxInflight, window, localCentDelta, remoteCentDelta)
			}
		}
	}
}

func diffTotals(after, before Totals) Totals {
	return Totals{
		Messages:    after.Messages - before.Messages,
		Frames:      after.Frames - before.Frames,
		Bytes:       after.Bytes - before.Bytes,
		BytesSaved:  after.BytesSaved - before.BytesSaved,
		Revalidated: after.Revalidated - before.Revalidated,
		Skipped:     after.Skipped - before.Skipped,
		Reconnects:  after.Reconnects - before.Reconnects,
	}
}

// TestWindowInvariantTotals pins the credit window as a pure latency
// knob: the same federation validated centrally at windows 1, 2, 8 and
// 32 produces identical verdicts, Messages, Frames, Bytes and
// BytesSaved on both transports — window 1 reproducing the old
// stop-and-wait totals byte for byte. Accounting is receiver-side on
// consumed chunks, so pipelining depth must never leak into Stats.
func TestWindowInvariantTotals(t *testing.T) {
	for _, mutate := range []bool{false, true} {
		var baseline *Totals
		for _, window := range []int{1, 2, 8, 32} {
			build := func() *Network {
				n, typing := eurostatSetup(t)
				n.ChunkSize = 64
				n.Window = window
				attachValidDocs(t, n, typing, []int{2, 1, 3})
				if mutate {
					n.Peers["f0"].Doc = xmltree.MustParse(typing[0].Starts[0] + "(zz)")
				}
				return n
			}

			local := build()
			localOK, err := local.ValidateCentralized()
			if err != nil {
				t.Fatal(err)
			}
			localTot := local.Stats.Totals()

			served := build()
			remote, shutdown := serveFederation(t, served)
			remoteOK, err := remote.ValidateCentralized()
			shutdown()
			if err != nil {
				t.Fatal(err)
			}
			remoteTot := remote.Stats.Totals()

			if localOK != remoteOK || localOK == mutate {
				t.Fatalf("mutate=%v window=%d: verdicts in-process=%v tcp=%v", mutate, window, localOK, remoteOK)
			}
			if localTot != remoteTot {
				t.Fatalf("mutate=%v window=%d: totals differ across transports:\n in-process %+v\n tcp        %+v",
					mutate, window, localTot, remoteTot)
			}
			if baseline == nil {
				baseline = &remoteTot
			} else if remoteTot != *baseline {
				t.Fatalf("mutate=%v window=%d: totals differ from window=1 baseline:\n window=1 %+v\n window=%d %+v",
					mutate, window, *baseline, window, remoteTot)
			}
		}
	}
}

// TestTCPBoundedDelivery re-runs the mid-transfer rejection bound over
// real sockets: rejecting an invalid first fragment must leave almost
// all of a huge later fragment unshipped, with the sender halted by the
// reject frame.
func TestTCPBoundedDelivery(t *testing.T) {
	served, typing := eurostatSetup(t)
	served.ChunkSize = 64
	attachValidDocs(t, served, typing, []int{1, 1, 2000})
	served.Peers["f0"].Doc = xmltree.MustParse(typing[0].Starts[0] + "(zz)")
	remote, shutdown := serveFederation(t, served)
	defer shutdown()
	ok, err := remote.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("invalid federation accepted")
	}
	tot := remote.Stats.Totals()
	fatSize := served.Peers["f3"].Doc.XMLSize()
	if tot.Bytes >= fatSize/10 {
		t.Errorf("mid-transfer rejection delivered %d bytes; the 2000-entry fragment alone is %d", tot.Bytes, fatSize)
	}
	if tot.BytesSaved <= fatSize/2 {
		t.Errorf("BytesSaved = %d, expected most of the %d-byte fat fragment", tot.BytesSaved, fatSize)
	}
}

// TestTCPCollaborativeEditing drives UpdatePeer verdicts remotely: a
// remote kernel peer can run the distributed protocol after a hosted
// peer's document was edited in place (sources read the live document).
func TestTCPLiveEdits(t *testing.T) {
	served, typing := eurostatSetup(t)
	attachValidDocs(t, served, typing, []int{2, 2, 2})
	remote, shutdown := serveFederation(t, served)
	defer shutdown()
	ok, err := remote.ValidateDistributed()
	if err != nil || !ok {
		t.Fatalf("valid federation rejected: %v %v", ok, err)
	}
	// Corrupt a hosted document in place; the host serves the edit.
	served.Peers["f2"].Doc = xmltree.MustParse(typing[2].Starts[0] + "(nationalIndex(country))")
	ok, err = remote.ValidateDistributed()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("federation with corrupted hosted document accepted")
	}
	ok, err = remote.ValidateCentralized()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("centralized validation over TCP accepted the corrupted document")
	}
}

// TestDialTCPRejectsIncompleteFederation: joining with an unmapped
// docking point fails fast.
func TestDialTCPErrors(t *testing.T) {
	served, typing := eurostatSetup(t)
	attachValidDocs(t, served, typing, []int{1, 1, 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := served.ServeTCP(ln)
	defer host.Close()
	joined := NewNetwork(served.Kernel, served.GlobalType)
	if _, err := joined.DialTCP(map[string]string{"f0": host.Addr().String()}); err == nil {
		t.Error("incomplete address map should fail")
	}
	if _, err := joined.DialTCP(map[string]string{
		"f0": "127.0.0.1:1", "f1": "127.0.0.1:1", "f2": "127.0.0.1:1", "f3": "127.0.0.1:1",
	}); err == nil {
		t.Error("dial to a dead address should fail")
	}
}

// TestDigestMismatchRefusesJoin: a join running a different design than
// the serve is refused at the hello, before any fragment moves.
func TestDigestMismatchRefusesJoin(t *testing.T) {
	served, typing := eurostatSetup(t)
	attachValidDocs(t, served, typing, []int{1, 1, 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	host := served.ServeTCP(ln)
	defer host.Close()
	// A joiner whose kernel differs: the digest differs, the hello fails.
	other := NewNetwork(axml.MustParseKernel("eurostat(f0 f1)"), served.GlobalType)
	_, err = transport.Dial(host.Addr().String(), transport.Config{Digest: other.Digest(), Chunk: 64})
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("mismatched design should be refused at hello, got %v", err)
	}
}
