package p2p

import (
	"fmt"
	"testing"
)

// BenchmarkCentralizedChunkSweep runs centralized validation of a
// ~120k-node federation across frame budgets: the verdict and the bytes
// moved are identical at every size, so the sweep isolates pure framing
// overhead — the memory/throughput trade-off of the chunk knob.
func BenchmarkCentralizedChunkSweep(b *testing.B) {
	for _, chunk := range []int{16, 256, 4096, 65536, Unchunked} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			n.ChunkSize = chunk
			attachValidDocs(b, n, typing, []int{5000, 5000, 5000})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := n.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := n.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.Frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkCentralizedRejection measures the other side of the trade:
// an invalid first fragment with a fat healthy one behind it. Small
// chunks stop the transfer almost immediately — BytesSaved per op is the
// communication win of mid-transfer rejection.
func BenchmarkCentralizedRejection(b *testing.B) {
	for _, chunk := range []int{256, 4096, Unchunked} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			n.ChunkSize = chunk
			attachValidDocs(b, n, typing, []int{1, 1, 20000})
			n.Peers["f0"].Doc.Children = nil // averages missing: fails instantly
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := n.ValidateCentralized()
				if err != nil || ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := n.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.BytesSaved)/float64(b.N), "saved-bytes/op")
		})
	}
}
