package p2p

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// BenchmarkCentralizedChunkSweep runs centralized validation of a
// ~120k-node federation across frame budgets: the verdict and the bytes
// moved are identical at every size, so the sweep isolates pure framing
// overhead — the memory/throughput trade-off of the chunk knob.
func BenchmarkCentralizedChunkSweep(b *testing.B) {
	for _, chunk := range []int{16, 256, 4096, 65536, Unchunked} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			n.ChunkSize = chunk
			attachValidDocs(b, n, typing, []int{5000, 5000, 5000})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := n.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := n.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.Frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkTCPCentralizedChunkSweep is the chunk sweep over real
// loopback sockets: the same federation, verdicts and wire bytes as the
// in-process sweep, plus the cost of the frame codec and the
// stop-and-wait ack round-trips — the throughput price of synchronous
// backpressure at each budget.
func BenchmarkTCPCentralizedChunkSweep(b *testing.B) {
	for _, chunk := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			served, typing := eurostatSetup(b)
			served.ChunkSize = chunk
			attachValidDocs(b, served, typing, []int{5000, 5000, 5000})
			remote, shutdown := serveFederation(b, served)
			defer shutdown()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := remote.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := remote.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.Frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkTCPDistributed measures a verdict-only round over loopback:
// the latency floor of the distributed protocol on a real wire.
func BenchmarkTCPDistributed(b *testing.B) {
	served, typing := eurostatSetup(b)
	attachValidDocs(b, served, typing, []int{200, 200, 200})
	remote, shutdown := serveFederation(b, served)
	defer shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := remote.ValidateDistributed()
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkTCPThroughput streams one fat fragment over loopback at the
// default budget and reports end-to-end MB/s — the headline number for
// the wire transport.
func BenchmarkTCPThroughput(b *testing.B) {
	served, typing := eurostatSetup(b)
	attachValidDocs(b, served, typing, []int{1, 1, 20000})
	size := 0
	for _, p := range served.Peers {
		size += p.Doc.XMLSize()
	}
	remote, shutdown := serveFederation(b, served)
	defer shutdown()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := remote.ValidateCentralized()
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkTCPWindowSweep is BenchmarkTCPThroughput across credit
// windows: the same fat fragment, the same chunk budget, windows from 1
// (the old stop-and-wait wire — one chunk per loopback round trip) to
// 64. Verdicts and wire bytes are pinned identical at every width by
// the differential tests; what the sweep isolates is pure pipelining —
// how much of the per-chunk round trip the credit window buys back.
// window=1 is the regression baseline the CI wire-bench job gates on.
func BenchmarkTCPWindowSweep(b *testing.B) {
	for _, window := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			served, typing := eurostatSetup(b)
			served.Window = window
			attachValidDocs(b, served, typing, []int{1, 1, 20000})
			size := 0
			for _, p := range served.Peers {
				size += p.Doc.XMLSize()
			}
			remote, shutdown := serveFederation(b, served)
			defer shutdown()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := remote.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// latencyListener wraps accepted connections so every write is
// delivered a fixed one-way delay later — without blocking the writer,
// which is what distinguishes latency from bandwidth. It is the bench's
// stand-in for a real link: on bare loopback the round trip is a few
// microseconds and validation dominates, so the credit window's effect
// only shows once the wire has latency worth hiding.
type latencyListener struct {
	net.Listener
	delay time.Duration
}

func (l *latencyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	lc := &latencyConn{Conn: c, delay: l.delay, ch: make(chan timedBuf, 4096)}
	go lc.pump()
	return lc, nil
}

type timedBuf struct {
	at time.Time
	b  []byte
}

type latencyConn struct {
	net.Conn
	delay time.Duration
	ch    chan timedBuf

	mu     sync.Mutex
	closed bool
}

func (c *latencyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	c.ch <- timedBuf{at: time.Now().Add(c.delay), b: append([]byte(nil), p...)}
	c.mu.Unlock()
	return len(p), nil
}

func (c *latencyConn) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	return c.Conn.Close()
}

// pump delivers queued writes at their due time, preserving order.
func (c *latencyConn) pump() {
	for tb := range c.ch {
		if d := time.Until(tb.at); d > 0 {
			time.Sleep(d)
		}
		if _, err := c.Conn.Write(tb.b); err != nil {
			for range c.ch { // drain until Close
			}
			return
		}
	}
}

// BenchmarkTCPWindowSweepRTT is the window sweep over a wire with 500µs
// of one-way delivery latency on the host's writes — a LAN-scale round
// trip instead of loopback's microseconds. This is where the credit
// window earns its keep: at window 1 every chunk pays the full delay
// before the next may ship (stop-and-wait caps throughput at
// chunk/RTT), while wider windows keep up to N chunks in flight and
// hide the latency entirely. The ≥3× acceptance target of the credit
// wire is measured here, where round trips — not the validator — are
// the bottleneck.
func BenchmarkTCPWindowSweepRTT(b *testing.B) {
	for _, window := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			served, typing := eurostatSetup(b)
			served.Window = window
			attachValidDocs(b, served, typing, []int{1, 1, 20000})
			size := 0
			for _, p := range served.Peers {
				size += p.Doc.XMLSize()
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			host := served.ServeTCP(&latencyListener{Listener: ln, delay: 500 * time.Microsecond})
			defer host.Close()
			joined := NewNetwork(served.Kernel, served.GlobalType)
			joined.Window = window
			addrs := map[string]string{}
			for _, fn := range served.Kernel.Funcs() {
				addrs[fn] = host.Addr().String()
			}
			sess, err := joined.DialTCP(addrs)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			joined.Transport = sess
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := joined.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkCentralizedRejection measures the other side of the trade:
// an invalid first fragment with a fat healthy one behind it. Small
// chunks stop the transfer almost immediately — BytesSaved per op is the
// communication win of mid-transfer rejection.
func BenchmarkCentralizedRejection(b *testing.B) {
	for _, chunk := range []int{256, 4096, Unchunked} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			n.ChunkSize = chunk
			attachValidDocs(b, n, typing, []int{1, 1, 20000})
			n.Peers["f0"].Doc.Children = nil // averages missing: fails instantly
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := n.ValidateCentralized()
				if err != nil || ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := n.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.BytesSaved)/float64(b.N), "saved-bytes/op")
		})
	}
}
