package p2p

import (
	"fmt"
	"testing"
)

// BenchmarkCentralizedChunkSweep runs centralized validation of a
// ~120k-node federation across frame budgets: the verdict and the bytes
// moved are identical at every size, so the sweep isolates pure framing
// overhead — the memory/throughput trade-off of the chunk knob.
func BenchmarkCentralizedChunkSweep(b *testing.B) {
	for _, chunk := range []int{16, 256, 4096, 65536, Unchunked} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			n.ChunkSize = chunk
			attachValidDocs(b, n, typing, []int{5000, 5000, 5000})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := n.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := n.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.Frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkTCPCentralizedChunkSweep is the chunk sweep over real
// loopback sockets: the same federation, verdicts and wire bytes as the
// in-process sweep, plus the cost of the frame codec and the
// stop-and-wait ack round-trips — the throughput price of synchronous
// backpressure at each budget.
func BenchmarkTCPCentralizedChunkSweep(b *testing.B) {
	for _, chunk := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			served, typing := eurostatSetup(b)
			served.ChunkSize = chunk
			attachValidDocs(b, served, typing, []int{5000, 5000, 5000})
			remote, shutdown := serveFederation(b, served)
			defer shutdown()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := remote.ValidateCentralized()
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := remote.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.Frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkTCPDistributed measures a verdict-only round over loopback:
// the latency floor of the distributed protocol on a real wire.
func BenchmarkTCPDistributed(b *testing.B) {
	served, typing := eurostatSetup(b)
	attachValidDocs(b, served, typing, []int{200, 200, 200})
	remote, shutdown := serveFederation(b, served)
	defer shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := remote.ValidateDistributed()
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkTCPThroughput streams one fat fragment over loopback at the
// default budget and reports end-to-end MB/s — the headline number for
// the wire transport.
func BenchmarkTCPThroughput(b *testing.B) {
	served, typing := eurostatSetup(b)
	attachValidDocs(b, served, typing, []int{1, 1, 20000})
	size := 0
	for _, p := range served.Peers {
		size += p.Doc.XMLSize()
	}
	remote, shutdown := serveFederation(b, served)
	defer shutdown()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := remote.ValidateCentralized()
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkCentralizedRejection measures the other side of the trade:
// an invalid first fragment with a fat healthy one behind it. Small
// chunks stop the transfer almost immediately — BytesSaved per op is the
// communication win of mid-transfer rejection.
func BenchmarkCentralizedRejection(b *testing.B) {
	for _, chunk := range []int{256, 4096, Unchunked} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			n, typing := eurostatSetup(b)
			n.ChunkSize = chunk
			attachValidDocs(b, n, typing, []int{1, 1, 20000})
			n.Peers["f0"].Doc.Children = nil // averages missing: fails instantly
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := n.ValidateCentralized()
				if err != nil || ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.StopTimer()
			t := n.Stats.Totals()
			b.ReportMetric(float64(t.Bytes)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(t.BytesSaved)/float64(b.N), "saved-bytes/op")
		})
	}
}
