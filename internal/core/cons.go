package core

import (
	"fmt"
	"sort"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// This file implements the bottom-up consistency problems cons[S]
// (Definition 11) and the constructions of typeT(τn) (Section 3):
//
//   - cons[R-EDTD] always answers yes (Corollary 3.3); ConsEDTD builds
//     typeT(τn) in the requested formalism R;
//   - cons[R-SDTD] runs the bottom-up merge algorithm of Theorem 3.10;
//   - cons[R-DTD] adds the per-element-name uniformity constraint of
//     Theorem 3.13;
//   - ConsSDTDCandidate / ConsDTDCandidate are independent
//     candidate-and-verify deciders used as differential-testing oracles.

// ConsResult is the outcome of a cons[S] decision.
type ConsResult struct {
	Consistent bool
	Reason     string       // explanation when not consistent
	EDTD       *schema.EDTD // typeT(τn) when consistent (SDTD/EDTD forms)
	DTD        *schema.DTD  // set by ConsDTD when consistent
}

// ConsEDTD decides cons[R-EDTD] — always consistent — and returns
// typeT(τn) with content models in the formalism kind. Per Corollary 3.3
// the conversion succeeds for every R when the typing itself is in R; for
// KindDRE with non-dRE inputs it may fail, which is reported as an error
// (not an inconsistency).
func ConsEDTD(k *axml.Kernel, typing Typing, kind schema.Kind) (*schema.EDTD, error) {
	comp, err := Compose(k, typing)
	if err != nil {
		return nil, err
	}
	return convertKind(comp, kind)
}

// convertKind re-expresses every content model of e in the given
// formalism.
func convertKind(e *schema.EDTD, kind schema.Kind) (*schema.EDTD, error) {
	out := &schema.EDTD{Kind: kind, Names: map[string]string{}, Rules: map[string]*schema.Content{}}
	out.Starts = append([]string(nil), e.Starts...)
	for _, n := range e.SpecializedNames() {
		out.Names[n] = e.Elem(n)
	}
	names := e.SpecializedNames()
	sort.Strings(names)
	for _, n := range names {
		c := e.Rule(n)
		if c.AcceptsEps() && len(c.UsefulSymbols()) == 0 {
			continue
		}
		nc, err := schema.FromNFA(kind, c.Lang())
		if err != nil {
			return nil, fmt.Errorf("core: rule %s: %w", n, err)
		}
		out.Rules[n] = nc
	}
	return out, nil
}

// ConsSDTD decides cons[R-SDTD]. It runs the merge algorithm of
// Theorem 3.10 as a fast path — bottom-up over the kernel, same-element
// specialized names occurring in one content model are merged when their
// subtree languages coincide — and falls back to the complete
// candidate-and-verify decision (ConsSDTDCandidate) when a conflict with
// unequal languages is found.
//
// The fallback is necessary for correctness, not just convenience: the
// paper's algorithm concludes “no equivalent R-SDTD” from any unequal
// conflict, but that is too strict. Counterexample (DESIGN.md erratum
// E5): T = s0(f1 f2) with [τ1] = s1(b?) (a leaf b) and
// [τ2] = s2((b(d*))*): the witnesses b@1 (leaf only) and b@2 (d*
// content) have different subtree languages, yet extT(τn) = s0((b(d*))*)
// is SDTD- (even DTD-) expressible, because every extension routes
// through τ2's richer type. Equality of the pair languages is sufficient
// for merging but its failure does not prove inexpressibility.
func ConsSDTD(k *axml.Kernel, typing Typing, kind schema.Kind) (ConsResult, error) {
	for i, tau := range typing {
		if ok, el := tau.IsSingleType(); !ok {
			return ConsResult{}, fmt.Errorf("core: type %d is not single-type (element %s)", i+1, el)
		}
	}
	comp, err := Compose(k, typing)
	if err != nil {
		return ConsResult{}, err
	}
	work := comp.Clone()
	// Process kernel nodes bottom-up (post-order). Content models of the
	// kernel witnesses are the only candidates for single-type conflicts.
	nodes := postOrderWitnesses(k)
	for _, w := range nodes {
		if err := mergeConflicts(work, w); err != nil {
			// Unequal conflict: decide exactly via the candidate.
			res, cErr := ConsSDTDCandidate(k, typing)
			if cErr != nil {
				return ConsResult{}, cErr
			}
			if !res.Consistent {
				res.Reason = err.Error()
				return res, nil
			}
			converted, cErr := convertKind(res.EDTD, kind)
			if cErr != nil {
				return ConsResult{Consistent: false, Reason: cErr.Error()}, nil
			}
			return ConsResult{Consistent: true, EDTD: converted}, nil
		}
	}
	if ok, el := work.IsSingleType(); !ok {
		// Conflicts may also hide inside imported rules when a function's
		// own content models splice other functions' names — impossible by
		// construction, so this indicates a typing that was not single-type
		// to begin with.
		return ConsResult{}, fmt.Errorf("core: typing is not single-type (element %s)", el)
	}
	converted, err := convertKind(work, kind)
	if err != nil {
		return ConsResult{Consistent: false, Reason: err.Error()}, nil
	}
	return ConsResult{Consistent: true, EDTD: converted}, nil
}

// postOrderWitnesses returns the composed witness names of the kernel's
// element nodes in post-order (children before parents), using the same
// preorder ids Compose assigned.
func postOrderWitnesses(k *axml.Kernel) []string {
	tree := k.Tree()
	idOf := map[*xmltree.Tree]int{}
	counter := 0
	var pre func(n *xmltree.Tree)
	pre = func(n *xmltree.Tree) {
		idOf[n] = counter
		counter++
		for _, c := range n.Children {
			pre(c)
		}
	}
	pre(tree)
	var out []string
	var post func(n *xmltree.Tree)
	post = func(n *xmltree.Tree) {
		for _, c := range n.Children {
			post(c)
		}
		if !k.IsFunc(n.Label) {
			out = append(out, fmt.Sprintf("%s^%d", n.Label, idOf[n]))
		}
	}
	post(tree)
	return out
}

// mergeConflicts resolves single-type conflicts in π(w) by merging
// equivalent specializations; it fails when a conflict is not mergeable.
func mergeConflicts(work *schema.EDTD, w string) error {
	for {
		conflict := findConflict(work, w)
		if conflict == nil {
			return nil
		}
		a, b := conflict[0], conflict[1]
		if !subtypeEquivalent(work, a, b) {
			return fmt.Errorf("content model of %s needs both %s and %s (element %s) with different subtree languages; no equivalent single-type exists",
				w, a, b, work.Elem(a))
		}
		mergeNames(work, a, b)
	}
}

// findConflict returns two distinct same-element names in π(w)'s alphabet,
// or nil.
func findConflict(work *schema.EDTD, w string) []string {
	byElem := map[string]string{}
	syms := work.Rule(w).UsefulSymbols()
	sort.Strings(syms)
	for _, n := range syms {
		el := work.Elem(n)
		if prev, ok := byElem[el]; ok && prev != n {
			return []string{prev, n}
		}
		byElem[el] = n
	}
	return nil
}

// subtypeEquivalent decides [work(ã)] = [work(b̃)], preferring the
// single-type procedure and falling back to tree automata.
func subtypeEquivalent(work *schema.EDTD, a, b string) bool {
	sa, sb := work.SubType(a), work.SubType(b)
	if okA, _ := sa.IsSingleType(); okA {
		if okB, _ := sb.IsSingleType(); okB {
			ok, _ := schema.EquivalentSDTD(sa, sb)
			return ok
		}
	}
	ok, _ := schema.EquivalentEDTD(sa, sb)
	return ok
}

// mergeNames rewrites b to a in every content model and drops b's rule.
func mergeNames(work *schema.EDTD, a, b string) {
	for _, n := range work.SpecializedNames() {
		if n == b {
			continue
		}
		c, ok := work.Rules[n]
		if !ok {
			continue
		}
		renamed := relabel(c.Lang(), func(s string) string {
			if s == b {
				return a
			}
			return s
		})
		work.Rules[n] = schema.NewContentNFA(renamed)
	}
	delete(work.Rules, b)
	delete(work.Names, b)
	for i, s := range work.Starts {
		if s == b {
			work.Starts[i] = a
		}
	}
}

// ConsDTD decides cons[R-DTD] (Theorem 3.13): the SDTD merge plus the
// requirement that all specializations of an element name have µ-equal
// content models; the resulting DTD has one rule per element name.
func ConsDTD(k *axml.Kernel, typing Typing, kind schema.Kind) (ConsResult, error) {
	res, err := ConsSDTD(k, typing, schema.KindNFA)
	if err != nil {
		return ConsResult{}, err
	}
	if !res.Consistent {
		return res, nil
	}
	sd, err := res.EDTD.Reduce()
	if err != nil {
		return ConsResult{}, fmt.Errorf("core: reducing merged SDTD: %w", err)
	}
	// Uniformity across contexts: µ-projected content models must agree
	// for all specializations of each element name (closure under subtree
	// substitution, Lemma 3.12).
	byElem := map[string][]string{}
	for _, n := range sd.SpecializedNames() {
		byElem[sd.Elem(n)] = append(byElem[sd.Elem(n)], n)
	}
	elems := make([]string, 0, len(byElem))
	for el := range byElem {
		elems = append(elems, el)
	}
	sort.Strings(elems)
	dtd := schema.NewDTD(kind, sd.Elem(sd.Starts[0]))
	for _, el := range elems {
		names := byElem[el]
		sort.Strings(names)
		first := sd.ProjectedRule(names[0])
		for _, n := range names[1:] {
			if ok, w := strlang.Equivalent(first, sd.ProjectedRule(n)); !ok {
				return ConsResult{
					Consistent: false,
					Reason: fmt.Sprintf("element %s has context-dependent content models (%s vs %s differ on %v); not closed under subtree substitution",
						el, names[0], n, w),
				}, nil
			}
		}
		if first.AcceptsEps() && len(first.UsefulSymbols()) == 0 {
			continue
		}
		c, err := schema.FromNFA(kind, first)
		if err != nil {
			return ConsResult{Consistent: false, Reason: err.Error()}, nil
		}
		dtd.Rules[el] = c
	}
	return ConsResult{Consistent: true, DTD: dtd, EDTD: dtd.ToEDTD()}, nil
}
