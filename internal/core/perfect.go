package core

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/strlang"
)

// This file implements the perfect automaton Ω(A, w) of Section 6
// (Algorithm 1), generalized to kernel boxes as in Section 7: the
// string case is the box case with singleton sets.
//
// The solvers use the chain analysis below, which computes the legal local
// automata Aut(Ωi) — the automata surviving Algorithm 1's correction steps
// — by a forward/backward pass over the Ini/Fin delimited-state sets. The
// literal ε-glued Ω of Figure 7 is also materialized (OmegaNFA) and is
// cross-checked against the chain analysis in the tests.

// LocalAuto is a legal local automaton A(qi, qf) ∈ Aut(Ωi).
type LocalAuto struct {
	Qi, Qf int
	Lang   *strlang.NFA
}

// PerfectAutomaton is Ω(A, B) for a target automaton A and a kernel box B.
type PerfectAutomaton struct {
	target *strlang.NFA
	kernel *axml.KernelBox
	// aut[i] is Aut(Ω_{i+1}): the legal local automata for function i.
	aut [][]LocalAuto
	// omegaI[i] is Ω_{i+1} = ∪ Aut(Ω_{i+1}).
	omegaI []*strlang.NFA
	// viableEnd[i] ⊆ K: states where the w_i segment may end on a legal
	// chain; viableStart[i]: states where the w_i segment may start.
	viableEnd   []strlang.IntSet
	viableStart []strlang.IntSet
}

// BuildPerfect constructs Ω(A, B). A may contain ε-transitions.
func BuildPerfect(target *strlang.NFA, kernel *axml.KernelBox) *PerfectAutomaton {
	p := &PerfectAutomaton{target: target, kernel: kernel}
	n := kernel.NumFuncs()
	k := target.NumStates()

	// Forward pass.
	// feEnd[i]: states reachable as the end of the B_i segment on some
	// forward-legal prefix chain; fsStart[i]: legal starts of B_i.
	feEnd := make([]strlang.IntSet, n+1)
	fsStart := make([]strlang.IntSet, n+1)
	startSet := target.Closure(strlang.NewIntSet(target.Start()))
	fsStart[0] = startSet
	feEnd[0] = stepBoxFrom(target, startSet, kernel.Boxes[0])
	reach := make([]strlang.IntSet, k)
	for q := 0; q < k; q++ {
		reach[q] = target.Reach(q)
	}
	rev := target.Reverse()
	coReach := make([]strlang.IntSet, k)
	for q := 0; q < k; q++ {
		coReach[q] = rev.Reach(q)
	}
	for i := 1; i <= n; i++ {
		ini := strlang.IniBox(target, kernel.Boxes[i])
		// from = ini ∩ ⋃{reach[q] : q ∈ feEnd[i-1]}, word-wise.
		acc := strlang.NewIntSet()
		for q := range feEnd[i-1].All() {
			acc.AddAll(reach[q])
		}
		from := acc.Intersect(ini)
		fsStart[i] = from
		feEnd[i] = stepBoxFrom(target, target.Closure(from), kernel.Boxes[i])
	}

	// Backward pass.
	p.viableEnd = make([]strlang.IntSet, n+1)
	p.viableStart = make([]strlang.IntSet, n+1)
	p.viableEnd[n] = feEnd[n].Intersect(target.Finals())
	for i := n; i >= 1; i-- {
		// viableStart[i]: starts of B_i from which the segment can land in
		// viableEnd[i].
		vs := strlang.NewIntSet()
		for q := range fsStart[i].All() {
			res := stepBoxFrom(target, target.Closure(strlang.NewIntSet(q)), kernel.Boxes[i])
			if res.Intersects(p.viableEnd[i]) {
				vs.Add(q)
			}
		}
		p.viableStart[i] = vs
		// viableEnd[i-1]: ends of B_{i-1} that can reach some viable start.
		ve := strlang.NewIntSet()
		for q := range feEnd[i-1].All() {
			if reach[q].Intersects(vs) {
				ve.Add(q)
			}
		}
		p.viableEnd[i-1] = ve
	}
	p.viableStart[0] = startSet

	// Legal local automata.
	p.aut = make([][]LocalAuto, n)
	p.omegaI = make([]*strlang.NFA, n)
	for i := 1; i <= n; i++ {
		var autos []LocalAuto
		for _, q := range p.viableEnd[i-1].Sorted() {
			for _, qf := range p.viableStart[i].Sorted() {
				if !reach[q].Has(qf) {
					continue
				}
				la, ok := strlang.LocalAutomaton(target, q, qf)
				if !ok {
					continue
				}
				autos = append(autos, LocalAuto{Qi: q, Qf: qf, Lang: la})
			}
		}
		p.aut[i-1] = autos
		langs := make([]*strlang.NFA, len(autos))
		for j, a := range autos {
			langs[j] = a.Lang
		}
		p.omegaI[i-1] = strlang.UnionAll(langs...)
	}
	return p
}

// stepBoxFrom reads the box through the automaton from the ε-closed set.
func stepBoxFrom(a *strlang.NFA, from strlang.IntSet, box strlang.Box) strlang.IntSet {
	cur := from
	for _, set := range box {
		next := strlang.NewIntSet()
		for _, s := range set {
			next.AddAll(a.Step(cur, s))
		}
		cur = next
	}
	return cur
}

// Compatible reports whether A is compatible with the kernel: some legal
// chain exists, equivalently some sound typing exists (Section 6).
func (p *PerfectAutomaton) Compatible() bool {
	return p.viableEnd[len(p.viableEnd)-1].Len() > 0
}

// Aut returns Aut(Ωi) for function i (1-based), the set of legal local
// automata.
func (p *PerfectAutomaton) Aut(i int) []LocalAuto { return p.aut[i-1] }

// OmegaI returns Ωi = ∪Aut(Ωi) for function i (1-based).
func (p *PerfectAutomaton) OmegaI(i int) *strlang.NFA { return p.omegaI[i-1] }

// TypingOmega returns the typing (Ωn).
func (p *PerfectAutomaton) TypingOmega() WordTyping {
	out := make(WordTyping, len(p.omegaI))
	copy(out, p.omegaI)
	return out
}

// Chains enumerates the legal chains (q0, s1, q1, …, sn, qn) of Seq(Ω):
// q_i are segment ends, s_i segment starts. Intended for tests and small
// instances; the number of chains is O(k^(2n)).
func (p *PerfectAutomaton) Chains() [][]int {
	n := p.kernel.NumFuncs()
	var out [][]int
	var rec func(i int, q int, acc []int)
	rec = func(i int, q int, acc []int) {
		if i > n {
			if p.target.Finals().Has(q) {
				out = append(out, append([]int(nil), acc...))
			}
			return
		}
		for _, s := range p.viableStart[i].Sorted() {
			if !p.target.Reach(q).Has(s) {
				continue
			}
			ends := stepBoxFrom(p.target, p.target.Closure(strlang.NewIntSet(s)), p.kernel.Boxes[i])
			for _, q2 := range ends.Intersect(p.viableEnd[i]).Sorted() {
				rec(i+1, q2, append(append(acc, s), q2))
			}
		}
	}
	for _, q0 := range p.viableEnd[0].Sorted() {
		rec(1, q0, []int{q0})
	}
	return out
}

// OmegaNFA materializes the literal ε-glued perfect automaton of
// Algorithm 1 / Figure 7 and returns it trimmed. Its language satisfies
// Ω ≤ A (Lemma 6.1).
func (p *PerfectAutomaton) OmegaNFA() *strlang.NFA {
	n := p.kernel.NumFuncs()
	out := strlang.NewNFA()
	type ends struct{ ini, fin int }
	// W-layer automata: A(qi,qf) with (qi, B_i, qf) ∈ Δ*; X-layer automata
	// are the legal Aut(Ωi) members. Glue by endpoint labels.
	wLayer := make([]map[[2]int]ends, n+1)
	addCopy := func(la *strlang.NFA) ends {
		off := out.Graft(la)
		var fin int
		for q := range la.Finals().All() {
			fin = off + q
		}
		return ends{ini: off + la.Start(), fin: fin}
	}
	for i := 0; i <= n; i++ {
		wLayer[i] = map[[2]int]ends{}
		var inis []int
		if i == 0 {
			inis = []int{p.target.Start()} // correction step 5
		} else {
			inis = p.viableStart[i].Sorted()
		}
		for _, qi := range inis {
			targets := stepBoxFrom(p.target, p.target.Closure(strlang.NewIntSet(qi)), p.kernel.Boxes[i])
			for _, qf := range targets.Sorted() {
				if i == n && !p.target.Finals().Has(qf) {
					continue // correction step 7
				}
				la, ok := strlang.LocalAutomaton(p.target, qi, qf)
				if !ok {
					continue
				}
				wLayer[i][[2]int{qi, qf}] = addCopy(la)
			}
		}
	}
	// Start state: the W0 automata share the initial label s; merge via ε
	// from the NFA's start (correction step 6).
	for _, e := range wLayer[0] {
		out.AddEps(out.Start(), e.ini)
	}
	for i := 1; i <= n; i++ {
		for _, x := range p.aut[i-1] {
			xe := addCopy(x.Lang)
			for key, we := range wLayer[i-1] {
				if key[1] == x.Qi {
					out.AddEps(we.fin, xe.ini)
				}
			}
			for key, we := range wLayer[i] {
				if key[0] == x.Qf {
					out.AddEps(xe.fin, we.ini)
				}
			}
		}
	}
	for key, e := range wLayer[n] {
		if p.target.Finals().Has(key[1]) {
			out.MarkFinal(e.fin)
		}
	}
	trimmed, _ := out.Trim() // correction step 8
	return trimmed
}

// String summarizes the perfect automaton for debugging.
func (p *PerfectAutomaton) String() string {
	s := fmt.Sprintf("Ω over %s:\n", p.kernel)
	for i := range p.aut {
		s += fmt.Sprintf("  Aut(Ω%d): %d local automata; Ω%d = %s\n",
			i+1, len(p.aut[i]), i+1, strlang.RegexString(strlang.RegexFromNFA(p.omegaI[i])))
	}
	return s
}
