package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// Randomized self-consistency tests: the decision procedures must agree
// with each other and with their definitions on random designs. These are
// the strongest correctness net in the repository — every inconsistency
// between the constructive solvers (∃-problems) and the verification
// problems is a bug.

// TestFuzzWordDesignSelfConsistency: on random word designs,
//   - LocalTyping's result verifies as local;
//   - every MaximalLocalTypings result verifies as maximal local;
//   - PerfectTyping's result verifies as perfect, and perfect implies a
//     unique maximal local typing (Theorem 2.1);
//   - if no local typing exists, MaximalLocalTypings is empty.
func TestFuzzWordDesignSelfConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	kernels := []string{"f1", "a f1", "f1 f2", "f1 b f2", "a f1 c f2"}
	for trial := 0; trial < 80; trial++ {
		re := randomWordRegex(r, 2)
		kernel := kernels[r.Intn(len(kernels))]
		d := MustWordDesign(re, kernel)
		label := fmt.Sprintf("τ=%s w=%s", re, kernel)

		local, hasLocal := d.LocalTyping()
		if hasLocal && !d.Local(local) {
			t.Fatalf("%s: LocalTyping returned a non-local typing", label)
		}
		mls := d.MaximalLocalTypings()
		if hasLocal != (len(mls) > 0) {
			t.Fatalf("%s: ∃-loc=%v but %d maximal local typings (∃-loc ⟺ ∃-ml for nFAs)",
				label, hasLocal, len(mls))
		}
		for _, ml := range mls {
			ok, err := d.MaximalLocal(ml)
			if err != nil || !ok {
				t.Fatalf("%s: enumerated maximal local typing fails verification (err=%v)", label, err)
			}
		}
		perfect, hasPerfect := d.PerfectTyping()
		if hasPerfect {
			if !d.IsPerfect(perfect) {
				t.Fatalf("%s: PerfectTyping result fails IsPerfect", label)
			}
			if len(mls) != 1 {
				t.Fatalf("%s: perfect exists but %d maximal local typings (Thm 2.1)", label, len(mls))
			}
			if !EquivWord(mls[0], perfect) {
				t.Fatalf("%s: unique maximal local ≠ perfect", label)
			}
		}
		// Quasi-perfect is implied by perfect.
		if hasPerfect {
			qp, ok := d.QuasiPerfectTyping()
			if !ok || !EquivWord(qp, perfect) {
				t.Fatalf("%s: perfect design must be quasi-perfect with the same typing", label)
			}
		}
	}
}

// TestFuzzConsDifferential: the merge-based cons deciders agree with the
// candidate-and-verify oracles on random kernels and typings.
func TestFuzzConsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	kernels := []string{
		"s0(f1)", "s0(a f1)", "s0(f1 f2)", "s0(a(f1) b(f2))",
		"s0(a(f1) a(f2))", "s0(f1 a(f2))", "s0(a(b f1) f2)",
	}
	contents := []string{"b*", "b", "b?", "b c", "c*", "b | c", "ε"}
	subRules := []string{"", "\nb -> d?", "\nb -> d*", "\nc -> d"}
	for trial := 0; trial < 60; trial++ {
		kSrc := kernels[r.Intn(len(kernels))]
		k := axml.MustParseKernel(kSrc)
		typing := make(Typing, k.NumFuncs())
		var desc []string
		for i := range typing {
			content := contents[r.Intn(len(contents))]
			sub := subRules[r.Intn(len(subRules))]
			src := fmt.Sprintf("root s%d\ns%d -> %s%s", i+1, i+1, content, sub)
			typing[i] = schema.MustParseEDTD(schema.KindNRE, src).Clone()
			desc = append(desc, content+sub)
		}
		label := fmt.Sprintf("T=%s typing=%v", kSrc, desc)

		merge, err := ConsSDTD(k, typing, schema.KindNFA)
		if err != nil {
			t.Fatalf("%s: ConsSDTD: %v", label, err)
		}
		oracle, err := ConsSDTDCandidate(k, typing)
		if err != nil {
			t.Fatalf("%s: ConsSDTDCandidate: %v", label, err)
		}
		if merge.Consistent != oracle.Consistent {
			t.Fatalf("%s: SDTD deciders disagree (merge=%v oracle=%v; %s | %s)",
				label, merge.Consistent, oracle.Consistent, merge.Reason, oracle.Reason)
		}
		if merge.Consistent {
			if ok, w := schema.EquivalentEDTD(merge.EDTD, oracle.EDTD); !ok {
				t.Fatalf("%s: typeT versions differ on %s", label, w)
			}
			// typeT must be equivalent to T(τn) (Definition 11).
			comp, _ := Compose(k, typing)
			if ok, w := schema.EquivalentEDTD(merge.EDTD, comp); !ok {
				t.Fatalf("%s: typeT ≠ T(τn) on %s", label, w)
			}
		}
		mergeDTD, err := ConsDTD(k, typing, schema.KindNFA)
		if err != nil {
			t.Fatalf("%s: ConsDTD: %v", label, err)
		}
		oracleDTD, err := ConsDTDCandidate(k, typing)
		if err != nil {
			t.Fatalf("%s: ConsDTDCandidate: %v", label, err)
		}
		if mergeDTD.Consistent != oracleDTD.Consistent {
			t.Fatalf("%s: DTD deciders disagree (merge=%v oracle=%v; %s | %s)",
				label, mergeDTD.Consistent, oracleDTD.Consistent, mergeDTD.Reason, oracleDTD.Reason)
		}
		// DTD-consistency implies SDTD-consistency (DTDs are SDTDs).
		if mergeDTD.Consistent && !merge.Consistent {
			t.Fatalf("%s: DTD-consistent but not SDTD-consistent", label)
		}
	}
}

// TestFuzzComposeSemantics: random extensions validate against T(τn) iff
// every component is locally valid (Theorem 3.2, both directions sampled).
func TestFuzzComposeSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	k := axml.MustParseKernel("s0(a f1 b(f2))")
	typing := Typing{
		schema.MustParseEDTD(schema.KindNRE, "root s1\ns1 -> c*\nc : c -> d?"),
		schema.MustParseEDTD(schema.KindNRE, "root s2\ns2 -> c c | ε\nc : c -> d?"),
	}
	comp, err := Compose(k, typing)
	if err != nil {
		t.Fatal(err)
	}
	genC := func() *xmltree.Tree {
		c := xmltree.Leaf("c")
		if r.Intn(2) == 0 {
			c.Children = append(c.Children, xmltree.Leaf("d"))
		}
		return c
	}
	genForest := func(root string, sizes []int) *xmltree.Tree {
		tr := xmltree.New(root)
		n := sizes[r.Intn(len(sizes))]
		for i := 0; i < n; i++ {
			tr.Children = append(tr.Children, genC())
		}
		return tr
	}
	for trial := 0; trial < 200; trial++ {
		t1 := genForest("s1", []int{0, 1, 2, 3})
		t2 := genForest("s2", []int{0, 1, 2, 3})
		// Occasionally corrupt a subtree.
		if r.Intn(3) == 0 {
			victim := t1
			if r.Intn(2) == 0 {
				victim = t2
			}
			victim.Children = append(victim.Children, xmltree.Leaf("z"))
		}
		locallyValid := typing[0].Validate(t1) == nil && typing[1].Validate(t2) == nil
		ext := k.MustExtend(map[string]*xmltree.Tree{"f1": t1, "f2": t2})
		globallyValid := comp.Validate(ext) == nil
		if locallyValid != globallyValid {
			t.Fatalf("Theorem 3.2 violated on t1=%s t2=%s: local=%v global=%v",
				t1, t2, locallyValid, globallyValid)
		}
	}
}

// TestFuzzDTDDesignSelfConsistency: random DTD tree designs — existence
// results verify, and the composed typing is D-consistent.
func TestFuzzDTDDesignSelfConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	kernels := []string{"s(f1)", "s(a f1)", "s(f1 f2)", "s(a(f1) b)", "s(a(f1) f2)"}
	roots := []string{"a* b?", "a b", "a*", "a | b", "a+ b*"}
	for trial := 0; trial < 50; trial++ {
		kSrc := kernels[r.Intn(len(kernels))]
		rootContent := roots[r.Intn(len(roots))]
		tau := schema.MustParseDTD(schema.KindNRE,
			fmt.Sprintf("root s\ns -> %s\na -> c?\nb -> ε", rootContent))
		k := axml.MustParseKernel(kSrc)
		d := &DTDDesign{Type: tau, Kernel: k}
		label := fmt.Sprintf("τ(s)=%s T=%s", rootContent, kSrc)

		typing, hasLocal := d.ExistsLocal()
		if hasLocal {
			ok, err := d.IsLocal(typing)
			if err != nil {
				t.Fatalf("%s: IsLocal: %v", label, err)
			}
			if !ok {
				t.Fatalf("%s: ExistsLocal result fails IsLocal", label)
			}
		}
		perfect, hasPerfect := d.ExistsPerfect()
		if hasPerfect {
			if !hasLocal {
				t.Fatalf("%s: perfect without local", label)
			}
			ok, err := d.IsPerfect(perfect)
			if err != nil || !ok {
				t.Fatalf("%s: ExistsPerfect result fails IsPerfect (err=%v)", label, err)
			}
			ok, err = d.IsMaximalLocal(perfect)
			if err != nil || !ok {
				t.Fatalf("%s: perfect must be maximal local (err=%v)", label, err)
			}
		}
		for _, wt := range d.MaximalLocalWordTypings() {
			ty := d.TypingFromWords(wt)
			ok, err := d.IsMaximalLocal(ty)
			if err != nil || !ok {
				t.Fatalf("%s: enumerated ml typing fails verification (err=%v)", label, err)
			}
		}
	}
}

// TestFuzzSoundTypingsBelowOmega re-checks Theorem 6.3 on cell-union
// sound typings directly (beyond the chain typings of TestOmegaInvariants).
func TestFuzzSoundTypingsBelowOmega(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		re := randomWordRegex(r, 2)
		d := MustWordDesign(re, "f1 f2")
		if !d.Perfect().Compatible() {
			continue
		}
		omega := d.Perfect().TypingOmega()
		for _, typ := range d.MaximalSoundTypings() {
			if !LeqWord(typ, omega) {
				t.Fatalf("τ=%s: maximal sound typing not ≤ (Ωn)", re)
			}
			if ok, w := d.Sound(typ); !ok {
				t.Fatalf("τ=%s: MaximalSoundTypings returned unsound typing (witness %v)", re, w)
			}
			ok, err := d.MaximalSound(typ)
			if err != nil || !ok {
				t.Fatalf("τ=%s: maximal sound typing fails its own verification (err=%v)", re, err)
			}
		}
	}
}
