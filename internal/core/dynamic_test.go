package core

import (
	"testing"

	"dxml/internal/axml"
	"dxml/internal/strlang"
)

func TestSection8PaperExample(t *testing.T) {
	// Paper, Section 8: w = a f, τ_f = f? b a+. Repeated extension
	// reaches exactly a f? (ba+)+; the fully materialized documents are
	// a (ba+)+.
	ks := axml.MustParseKernelString("a f1")
	tau := strlang.RegexNFA(strlang.MustParseRegex("f1? b a+"))
	res, err := DynamicExtensionLang(ks, tau)
	if err != nil {
		t.Fatal(err)
	}
	wantReach := strlang.RegexNFA(strlang.MustParseRegex("a f1? (b a+)+"))
	if ok, w := strlang.Equivalent(res.Reachable, wantReach); !ok {
		t.Errorf("reachable documents should be a f1? (ba+)+, differ on %v (got %s)",
			w, strlang.DisplayRegex(res.Reachable))
	}
	wantMat := strlang.RegexNFA(strlang.MustParseRegex("a (b a+)+"))
	if ok, w := strlang.Equivalent(res.Materialized, wantMat); !ok {
		t.Errorf("materialized documents should be a(ba+)+, differ on %v", w)
	}
}

func TestSolveRecursiveRightLinear(t *testing.T) {
	// τ_f = (a b)? f? mirrored: words c* f | c*. Fixpoint: X = R*·N with
	// R = c*, N = c*: X = c* (any number of expansions concatenates c
	// blocks).
	tau := strlang.RegexNFA(strlang.MustParseRegex("c c* f1 | c?"))
	res, err := SolveRecursiveTyping("f1", tau)
	if err != nil {
		t.Fatal(err)
	}
	want := strlang.RegexNFA(strlang.MustParseRegex("c*"))
	if ok, w := strlang.Equivalent(res.Materialized, want); !ok {
		t.Errorf("materialized should be c*, differ on %v (got %s)", w,
			strlang.DisplayRegex(res.Materialized))
	}
	// Reachable keeps the optional trailing call.
	if !res.Reachable.Accepts([]strlang.Symbol{"c", "c", "f1"}) {
		t.Error("reachable should include partially materialized c c f1")
	}
}

func TestSolveRecursiveRejectsNonLinear(t *testing.T) {
	// τ_f = a f b: the fixpoint is {aⁿ c bⁿ}-shaped — context-free.
	tau := strlang.RegexNFA(strlang.MustParseRegex("a f1 b | c"))
	if _, err := SolveRecursiveTyping("f1", tau); err == nil {
		t.Error("center-recursive type must be rejected")
	}
	// Two occurrences per word are rejected too.
	tau2 := strlang.RegexNFA(strlang.MustParseRegex("f1 a f1 | b"))
	if _, err := SolveRecursiveTyping("f1", tau2); err == nil {
		t.Error("two-occurrence type must be rejected")
	}
}

func TestSolveRecursiveNoRecursion(t *testing.T) {
	// A type that never mentions f is its own fixpoint.
	tau := strlang.RegexNFA(strlang.MustParseRegex("b a+"))
	res, err := SolveRecursiveTyping("f1", tau)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := strlang.Equivalent(res.Materialized, tau); !ok {
		t.Errorf("fixpoint of a non-recursive type should be itself, differ on %v", w)
	}
	if ok, _ := strlang.Equivalent(res.Reachable, tau); !ok {
		t.Error("reachable should equal the type")
	}
}

func TestDynamicExtensionFixpointProperty(t *testing.T) {
	// Closure property: substituting τ_f's f by the materialized fixpoint
	// X must stay inside X (X is a pre-fixpoint), and N ⊆ X.
	cases := []string{
		"f1? b a+",
		"f1 a | b",
		"f1 (a | b) | c c",
	}
	for _, src := range cases {
		tau := strlang.RegexNFA(strlang.MustParseRegex(src))
		res, err := SolveRecursiveTyping("f1", tau)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		x := res.Materialized
		// Substitute f ↦ X inside τ: f is leading, so τ[f↦X] = X·R ∪ N.
		r := quotientAfterLeading(tau, "f1")
		var sigma []strlang.Symbol
		for _, s := range tau.Alphabet() {
			if s != "f1" {
				sigma = append(sigma, s)
			}
		}
		n := strlang.Intersect(tau, strlang.UniversalLang(sigma))
		substituted := strlang.Union(strlang.Concat(x, r), n)
		if ok, w := strlang.Included(substituted, x); !ok {
			t.Errorf("%s: fixpoint not closed under substitution, witness %v", src, w)
		}
		if ok, w := strlang.Included(n, x); !ok {
			t.Errorf("%s: N ⊄ X, witness %v", src, w)
		}
	}
}

func TestQuasiPerfectRemark2(t *testing.T) {
	// Remark 2's example: T = s(a f1), τ = s → a b* | d. No local typing
	// (d can never be produced), but a unique maximal sound typing b*
	// comprising every sound typing.
	d := MustWordDesign("a b* | d", "a f1")
	if _, ok := d.LocalTyping(); ok {
		t.Fatal("no local typing should exist")
	}
	qp, ok := d.QuasiPerfectTyping()
	if !ok {
		t.Fatal("Remark 2's design should have a quasi-perfect typing")
	}
	want := strlang.RegexNFA(strlang.MustParseRegex("b*"))
	if ok, w := strlang.Equivalent(qp[0], want); !ok {
		t.Errorf("quasi-perfect typing should be b*, differ on %v", w)
	}
	// Example 2's design has two maximal sound typings — not
	// quasi-perfect.
	d2 := MustWordDesign("a* b c*", "f1 f2")
	if _, ok := d2.QuasiPerfectTyping(); ok {
		t.Error("Example 2's design is not quasi-perfect")
	}
	// A perfect design is quasi-perfect, and the typings coincide.
	d3 := MustWordDesign("a* b c*", "f1 b f2")
	qp3, ok := d3.QuasiPerfectTyping()
	if !ok {
		t.Fatal("a perfect design is quasi-perfect")
	}
	perfect, _ := d3.PerfectTyping()
	if !EquivWord(qp3, perfect) {
		t.Error("quasi-perfect should equal the perfect typing")
	}
}

func TestMaximalSoundTypingsExample4(t *testing.T) {
	// Example 4 continued: maximal sound typings of ((ab)*, f1 f2) include
	// the non-local ((ab)*a, b(ab)*) alongside the local ((ab)*, (ab)*).
	d := MustWordDesign("(a b)*", "f1 f2")
	ms := d.MaximalSoundTypings()
	if len(ms) < 2 {
		t.Fatalf("expected ≥ 2 maximal sound typings, got %d", len(ms))
	}
	foundNonLocal := false
	wantA := strlang.RegexNFA(strlang.MustParseRegex("(a b)* a"))
	for _, typ := range ms {
		if ok, _ := strlang.Equivalent(typ[0], wantA); ok {
			foundNonLocal = true
			if d.Local(typ) {
				t.Error("((ab)*a, …) should not be local")
			}
		}
	}
	if !foundNonLocal {
		t.Error("the maximal sound typing ((ab)*a, b(ab)*) was not found")
	}
}
