package core

import (
	"dxml/internal/strlang"
)

// This file implements the Dec(Ωi) decomposition of Section 6.1
// (Figure 8): the automata of Aut(Ωi) are decomposed into at most
// 2^|Aut(Ωi)|−1 pairwise disjoint “cells” ∩A1 − ∪A2; only the nonempty
// cells are materialized, found as the accept signatures of the joint
// subset construction.

// Cell is a nonempty cell of Dec(Ωi): the set of strings belonging to
// exactly the automata of Members (a nonempty subset of Aut(Ωi), by
// index).
type Cell struct {
	Members strlang.IntSet
	Lang    *strlang.NFA
}

// DecomposeCells returns the nonempty cells of the decomposition of the
// given automata, in a deterministic order (by member-set key). The cells
// partition ∪[Ai].
func DecomposeCells(autos []*strlang.NFA) []Cell {
	if len(autos) == 0 {
		return nil
	}
	// Joint subset construction: run all automata simultaneously on a
	// shared disjoint-union state space.
	eps := make([]*strlang.NFA, len(autos))
	offset := make([]int, len(autos))
	total := 0
	for i, a := range autos {
		eps[i] = a.WithoutEps()
		offset[i] = total
		total += a.NumStates()
	}
	owner := make([]int, total)
	for i := range autos {
		for q := 0; q < autos[i].NumStates(); q++ {
			owner[offset[i]+q] = i
		}
	}
	syms := strlang.UnionAlphabetIDs(eps...)

	start := strlang.NewIntSet()
	for i, a := range eps {
		start.Add(offset[i] + a.Start())
	}
	sig := func(set strlang.IntSet) strlang.IntSet {
		m := strlang.NewIntSet()
		for q := range set.All() {
			i := owner[q]
			if eps[i].IsFinal(q - offset[i]) {
				m.Add(i)
			}
		}
		return m
	}
	step := func(set strlang.IntSet, sid int32) strlang.IntSet {
		next := strlang.NewIntSet()
		for q := range set.All() {
			i := owner[q]
			for _, t := range eps[i].SuccID(q-offset[i], sid) {
				next.Add(offset[i] + int(t))
			}
		}
		return next
	}
	// BFS over joint subsets, building a DFA whose states we keep so each
	// cell's language is the DFA with the matching-signature finals.
	type st struct {
		set strlang.IntSet
	}
	var states []st
	index := map[string]int{}
	addState := func(set strlang.IntSet) int {
		k := set.Key()
		if id, ok := index[k]; ok {
			return id
		}
		id := len(states)
		states = append(states, st{set})
		index[k] = id
		return id
	}
	addState(start)
	type trans struct {
		from int
		sym  int32
		to   int
	}
	var edges []trans
	for i := 0; i < len(states); i++ {
		for _, sid := range syms {
			next := step(states[i].set, sid)
			if next.Len() == 0 {
				continue
			}
			edges = append(edges, trans{i, sid, addState(next)})
		}
	}
	// Collect signatures.
	masks := map[string]strlang.IntSet{}
	var maskKeys []string
	for _, s := range states {
		m := sig(s.set)
		if m.Len() == 0 {
			continue
		}
		k := m.Key()
		if _, ok := masks[k]; !ok {
			masks[k] = m
			maskKeys = append(maskKeys, k)
		}
	}
	sortStringsCore(maskKeys)
	var cells []Cell
	for _, k := range maskKeys {
		m := masks[k]
		nfa := strlang.NewNFA()
		for i := 1; i < len(states); i++ {
			nfa.AddState()
		}
		for i, s := range states {
			if sig(s.set).Equal(m) {
				nfa.MarkFinal(i)
			}
		}
		for _, e := range edges {
			nfa.AddTransitionID(e.from, e.sym, e.to)
		}
		trimmed, _ := nfa.Trim()
		cells = append(cells, Cell{Members: m, Lang: trimmed})
	}
	return cells
}

func sortStringsCore(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
