package core

import (
	"math/rand"
	"strings"
	"testing"

	"dxml/internal/strlang"
)

func syms(w string) []strlang.Symbol {
	if w == "" {
		return nil
	}
	return strings.Split(w, "")
}

func TestExample2(t *testing.T) {
	// τ = a*bc*, T = s(f1 f2): (a*bc*, c*) and (a*, a*bc*) are maximal
	// local; (a?, a*bc*) is local but not maximal; no perfect typing.
	d := MustWordDesign("a* b c*", "f1 f2")

	t1 := MustWordTyping("a* b c*", "c*")
	t2 := MustWordTyping("a*", "a* b c*")
	t3 := MustWordTyping("a?", "a* b c*")
	for i, typ := range []WordTyping{t1, t2, t3} {
		if !d.Local(typ) {
			t.Errorf("typing %d should be local", i+1)
		}
	}
	for i, typ := range []WordTyping{t1, t2} {
		if ok, err := d.MaximalLocal(typ); err != nil || !ok {
			t.Errorf("typing %d should be maximal local (err=%v)", i+1, err)
		}
		if d.IsPerfect(typ) {
			t.Errorf("typing %d should not be perfect", i+1)
		}
	}
	if ok, _ := d.MaximalLocal(t3); ok {
		t.Error("(a?, a*bc*) should not be maximal")
	}
	if _, ok := d.PerfectTyping(); ok {
		t.Error("no perfect typing should exist for Example 2")
	}
	// But local (hence maximal local) typings exist.
	if _, ok := d.LocalTyping(); !ok {
		t.Error("∃-loc should hold for Example 2")
	}
	mls := d.MaximalLocalTypings()
	if len(mls) != 2 {
		t.Errorf("Example 2 has exactly two maximal local typings, got %d", len(mls))
	}
	// They must be (a*bc*, c*) and (a*, a*bc*) in some order.
	found1, found2 := false, false
	for _, ml := range mls {
		if EquivWord(ml, t1) {
			found1 = true
		}
		if EquivWord(ml, t2) {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("maximal local typings do not match the paper's: %v %v", found1, found2)
	}
}

func TestExample3(t *testing.T) {
	// τ = a*bc*, T = s(f1 b f2): (a*, c*) is perfect.
	d := MustWordDesign("a* b c*", "f1 b f2")
	perfect, ok := d.PerfectTyping()
	if !ok {
		t.Fatal("Example 3 should have a perfect typing")
	}
	want := MustWordTyping("a*", "c*")
	if !EquivWord(perfect, want) {
		t.Errorf("perfect typing should be (a*, c*), got (%s, %s)",
			strlang.RegexString(strlang.RegexFromNFA(perfect[0])),
			strlang.RegexString(strlang.RegexFromNFA(perfect[1])))
	}
	if !d.IsPerfect(want) {
		t.Error("IsPerfect rejects the perfect typing")
	}
	// Same language, different expression — still perfect (the notion is
	// language-level).
	if !d.IsPerfect(MustWordTyping("a*", "c? c*")) {
		t.Error("IsPerfect must be language-level")
	}
	if d.IsPerfect(MustWordTyping("a?", "c*")) {
		t.Error("a strictly smaller typing is not perfect")
	}
}

func TestExample4(t *testing.T) {
	// τ = (ab)*, T = s(f1 f2): ((ab)*, (ab)*) is the unique maximal local
	// typing but not perfect; no perfect typing exists.
	d := MustWordDesign("(a b)*", "f1 f2")
	unique := MustWordTyping("(a b)*", "(a b)*")
	if !d.Local(unique) {
		t.Fatal("((ab)*, (ab)*) should be local")
	}
	if ok, err := d.MaximalLocal(unique); err != nil || !ok {
		t.Errorf("((ab)*, (ab)*) should be maximal local (err=%v)", err)
	}
	if d.IsPerfect(unique) {
		t.Error("((ab)*, (ab)*) should not be perfect")
	}
	if _, ok := d.PerfectTyping(); ok {
		t.Error("no perfect typing should exist for Example 4")
	}
	mls := d.MaximalLocalTypings()
	if len(mls) != 1 {
		t.Fatalf("Example 4 has a unique maximal local typing, got %d", len(mls))
	}
	if !EquivWord(mls[0], unique) {
		t.Error("unique maximal local typing mismatch")
	}
	// The sound typing (a, b) is not ≤ ((ab)*, (ab)*) — soundness check.
	if ok, _ := d.Sound(MustWordTyping("a", "b")); !ok {
		t.Error("(a, b) should be sound")
	}
}

func TestExample5(t *testing.T) {
	// τ = (ab)+, T = s(f1 f2): exactly three maximal local typings.
	d := MustWordDesign("(a b)+", "f1 f2")
	want := []WordTyping{
		MustWordTyping("(a b)*", "(a b)+"),
		MustWordTyping("(a b)* a", "b (a b)*"),
		MustWordTyping("(a b)+", "(a b)*"),
	}
	mls := d.MaximalLocalTypings()
	if len(mls) != 3 {
		t.Fatalf("Example 5 has exactly three maximal local typings, got %d", len(mls))
	}
	for i, w := range want {
		found := false
		for _, ml := range mls {
			if EquivWord(ml, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("maximal local typing %d of the paper not found", i+1)
		}
	}
	if _, ok := d.PerfectTyping(); ok {
		t.Error("no perfect typing should exist for Example 5")
	}
}

func TestExample9(t *testing.T) {
	// w = a f1 c f2 e, τ = abccde: (b, cd) is local; (Ω2) = (bc?, c?d) is
	// strictly greater and not sound.
	d := MustWordDesign("a b c c d e", "a f1 c f2 e")
	local := MustWordTyping("b", "c d")
	if !d.Local(local) {
		t.Fatal("(b, cd) should be local")
	}
	omega := d.Perfect().TypingOmega()
	wantOmega := MustWordTyping("b c?", "c? d")
	if !EquivWord(omega, wantOmega) {
		t.Errorf("(Ω2) should be (bc?, c?d), got (%s, %s)",
			strlang.RegexString(strlang.RegexFromNFA(omega[0])),
			strlang.RegexString(strlang.RegexFromNFA(omega[1])))
	}
	if !LtWord(local, omega) {
		t.Error("(b, cd) < (Ω2) should hold")
	}
	if ok, _ := d.Sound(omega); ok {
		t.Error("(Ω2) should not be sound here (abccde ∌ a bc? c c?d e combos)")
	}
	if _, ok := d.PerfectTyping(); ok {
		t.Error("no perfect typing for Example 9")
	}
}

func TestExample10(t *testing.T) {
	// w = a f1 f2 d, τ = a(bc)*d: ((bc)*, (bc)*) is the unique maximal
	// local typing; Aut(Ω1) = {(bc)*, (bc)*b}, Aut(Ω2) = {(bc)*, c(bc)*};
	// (Ωn) is not sound.
	d := MustWordDesign("a (b c)* d", "a f1 f2 d")
	unique := MustWordTyping("(b c)*", "(b c)*")
	if !d.Local(unique) {
		t.Fatal("((bc)*, (bc)*) should be local")
	}
	if ok, err := d.MaximalLocal(unique); err != nil || !ok {
		t.Errorf("should be maximal local (err=%v)", err)
	}
	p := d.Perfect()
	om1 := p.OmegaI(1)
	om2 := p.OmegaI(2)
	if ok, _ := strlang.Equivalent(om1, strlang.RegexNFA(strlang.MustParseRegex("(b c)* b?"))); !ok {
		t.Errorf("Ω1 should be (bc)*b?, got %s", strlang.RegexString(strlang.RegexFromNFA(om1)))
	}
	if ok, _ := strlang.Equivalent(om2, strlang.RegexNFA(strlang.MustParseRegex("c? (b c)*"))); !ok {
		t.Errorf("Ω2 should be c?(bc)*, got %s", strlang.RegexString(strlang.RegexFromNFA(om2)))
	}
	if ok, _ := d.Sound(p.TypingOmega()); ok {
		t.Error("(Ωn) should not be sound for Example 10 (allows abccbcd)")
	}
	mls := d.MaximalLocalTypings()
	if len(mls) != 1 {
		t.Fatalf("unique maximal local expected, got %d", len(mls))
	}
}

func TestExample11(t *testing.T) {
	// τ = ab + ba, w = f1 f2: two sound typings (a, b), (b, a); no local
	// typing; yet Ω ≡ τ.
	d := MustWordDesign("a b | b a", "f1 f2")
	for _, typ := range []WordTyping{MustWordTyping("a", "b"), MustWordTyping("b", "a")} {
		if ok, _ := d.Sound(typ); !ok {
			t.Error("typing should be sound")
		}
	}
	if _, ok := d.LocalTyping(); ok {
		t.Error("no local typing should exist for Example 11")
	}
	if len(d.MaximalLocalTypings()) != 0 {
		t.Error("no maximal local typing should exist")
	}
	omega := d.Perfect().OmegaNFA()
	if ok, w := strlang.Equivalent(omega, d.Target); !ok {
		t.Errorf("Ω ≡ τ should hold for Example 11, witness %v", w)
	}
}

func TestTheorem21PerfectIsUniqueMaximal(t *testing.T) {
	// Every perfect typing is the unique maximal local typing.
	designs := []*WordDesign{
		MustWordDesign("a* b c*", "f1 b f2"),
		MustWordDesign("a* b", "f1 b"),
		MustWordDesign("a b* c", "a f1 c"),
	}
	for i, d := range designs {
		perfect, ok := d.PerfectTyping()
		if !ok {
			t.Fatalf("design %d should have a perfect typing", i)
		}
		mls := d.MaximalLocalTypings()
		if len(mls) != 1 {
			t.Fatalf("design %d: perfect implies unique maximal local, got %d", i, len(mls))
		}
		if !EquivWord(mls[0], perfect) {
			t.Errorf("design %d: unique maximal local ≠ perfect", i)
		}
	}
}

// TestCorollary64 checks: if a local typing exists, then w(τn) ≡ Ω ≡ A.
func TestCorollary64(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	for trial := 0; trial < 60; trial++ {
		re := randomWordRegex(r, 2)
		d := MustWordDesign(re, "f1 f2")
		typing, ok := d.LocalTyping()
		if !ok {
			continue
		}
		ext := d.ExtensionNFA(typing)
		omega := d.Perfect().OmegaNFA()
		if ok, w := strlang.Equivalent(ext, omega); !ok {
			t.Fatalf("τ=%s: w(τn) ≢ Ω, witness %v", re, w)
		}
		if ok, w := strlang.Equivalent(omega, d.Target); !ok {
			t.Fatalf("τ=%s: Ω ≢ A, witness %v", re, w)
		}
	}
}

// TestOmegaInvariants checks Lemma 6.1 (Ω ≤ A), Lemma 6.2 (chain typings
// are sound) and Theorem 6.3 (sound ⇒ ≤ (Ωn)) on random designs.
func TestOmegaInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	kernels := []string{"f1", "a f1", "f1 b f2", "f1 f2", "a f1 c f2 e", "f1 a f2 b"}
	for trial := 0; trial < 120; trial++ {
		re := randomWordRegex(r, 3)
		kernel := kernels[r.Intn(len(kernels))]
		d := MustWordDesign(re, kernel)
		p := d.Perfect()
		if !p.Compatible() {
			continue
		}
		// Lemma 6.1: Ω ≤ A.
		omega := p.OmegaNFA()
		if ok, w := strlang.Included(omega, d.Target); !ok {
			t.Fatalf("Lemma 6.1 violated for τ=%s w=%s: Ω accepts %v ∉ [A]", re, kernel, w)
		}
		// Lemma 6.2: every chain-aligned typing is sound.
		for _, chain := range p.Chains() {
			n := d.Kernel.NumFuncs()
			typing := make(WordTyping, n)
			okChain := true
			for i := 0; i < n; i++ {
				la, ok := strlang.LocalAutomaton(d.Target, chain[2*i], chain[2*i+1])
				if !ok {
					okChain = false
					break
				}
				typing[i] = la
			}
			if !okChain {
				t.Fatalf("illegal chain emitted for τ=%s w=%s", re, kernel)
			}
			if ok, w := d.Sound(typing); !ok {
				t.Fatalf("Lemma 6.2 violated for τ=%s w=%s: chain typing unsound on %v", re, kernel, w)
			}
		}
		// Theorem 6.3: a sound typing is ≤ (Ωn). Use single-string sound
		// typings sampled from extensions of the kernel within [A].
		omegaTyping := p.TypingOmega()
		for _, chain := range p.Chains() {
			n := d.Kernel.NumFuncs()
			typing := make(WordTyping, n)
			good := true
			for i := 0; i < n; i++ {
				la, _ := strlang.LocalAutomaton(d.Target, chain[2*i], chain[2*i+1])
				ws := strlang.Enumerate(la, 3, 1)
				if len(ws) == 0 {
					good = false
					break
				}
				typing[i] = strlang.WordLang(ws[0])
			}
			if !good {
				continue
			}
			if ok, _ := d.Sound(typing); ok {
				if !LeqWord(typing, omegaTyping) {
					t.Fatalf("Theorem 6.3 violated for τ=%s w=%s", re, kernel)
				}
			}
		}
	}
}

// randomWordRegex generates a random regex over {a,b,c} for design fuzzing.
func randomWordRegex(r *rand.Rand, depth int) string {
	if depth == 0 {
		return string(rune('a' + r.Intn(3)))
	}
	switch r.Intn(5) {
	case 0:
		return randomWordRegex(r, depth-1) + " " + randomWordRegex(r, depth-1)
	case 1:
		return "(" + randomWordRegex(r, depth-1) + " | " + randomWordRegex(r, depth-1) + ")"
	case 2:
		return "(" + randomWordRegex(r, depth-1) + ")*"
	case 3:
		return "(" + randomWordRegex(r, depth-1) + ")?"
	default:
		return randomWordRegex(r, depth-1)
	}
}

// TestOmegaNFAAgreesWithChains: the literal ε-glued Ω accepts exactly the
// union of the chain languages.
func TestOmegaNFAAgreesWithChains(t *testing.T) {
	d := MustWordDesign("a b c c d e", "a f1 c f2 e")
	p := d.Perfect()
	var chainLangs []*strlang.NFA
	for _, chain := range p.Chains() {
		// W0 · X1 · W1 · X2 · W2 languages along the chain:
		// s → q0, q0 → s1, s1 → q1, q1 → s2, s2 → q2.
		parts := []*strlang.NFA{}
		prev := d.Target.Start()
		points := append([]int{}, chain...)
		for _, pt := range points {
			la, ok := strlang.LocalAutomaton(d.Target, prev, pt)
			if !ok {
				t.Fatal("broken chain")
			}
			parts = append(parts, la)
			prev = pt
		}
		chainLangs = append(chainLangs, strlang.ConcatAll(parts...))
	}
	want := strlang.UnionAll(chainLangs...)
	got := p.OmegaNFA()
	if ok, w := strlang.Equivalent(got, want); !ok {
		t.Errorf("literal Ω differs from chain union on %v", w)
	}
}

func TestDecompositionFig8(t *testing.T) {
	// Three overlapping automata decompose into ≤ 7 nonempty cells
	// (Figure 8); here A1 = a|b, A2 = b|c, A3 = c|a gives exactly the
	// three pairwise cells a, b, c... each string belongs to exactly two.
	a1 := strlang.RegexNFA(strlang.MustParseRegex("a | b"))
	a2 := strlang.RegexNFA(strlang.MustParseRegex("b | c"))
	a3 := strlang.RegexNFA(strlang.MustParseRegex("c | a"))
	cells := DecomposeCells([]*strlang.NFA{a1, a2, a3})
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for _, c := range cells {
		if c.Members.Len() != 2 {
			t.Errorf("cell %v should have 2 members", c.Members.Sorted())
		}
		ws := strlang.Enumerate(c.Lang, 2, 10)
		if len(ws) != 1 {
			t.Errorf("cell should be a single string, got %v", ws)
		}
	}
	// A richer case: a*, a+, aa — realizable masks: {a*}=ε-only… etc.
	b1 := strlang.RegexNFA(strlang.MustParseRegex("a*"))
	b2 := strlang.RegexNFA(strlang.MustParseRegex("a+"))
	b3 := strlang.RegexNFA(strlang.MustParseRegex("a a"))
	cells = DecomposeCells([]*strlang.NFA{b1, b2, b3})
	// Cells: {1}: ε; {1,2}: a, aaa, aaaa…; {1,2,3}: aa → 3 cells.
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	// The cells partition a*: disjoint and union = a*.
	var langs []*strlang.NFA
	for _, c := range cells {
		langs = append(langs, c.Lang)
	}
	union := strlang.UnionAll(langs...)
	if ok, w := strlang.Equivalent(union, b1); !ok {
		t.Errorf("cells do not cover a*: %v", w)
	}
	for i := range cells {
		for j := i + 1; j < len(cells); j++ {
			if !strlang.Intersect(cells[i].Lang, cells[j].Lang).IsEmpty() {
				t.Errorf("cells %d and %d overlap", i, j)
			}
		}
	}
}

func TestSoundCompleteWitnesses(t *testing.T) {
	d := MustWordDesign("a* b", "f1 b")
	// Sound but incomplete typing.
	typ := MustWordTyping("a")
	if ok, _ := d.Sound(typ); !ok {
		t.Error("a is sound")
	}
	ok, w := d.Complete(typ)
	if ok {
		t.Fatal("a should be incomplete")
	}
	if !d.Target.Accepts(w) {
		t.Errorf("completeness witness %v not in target", w)
	}
	// Unsound typing with witness in the extension.
	bad := MustWordTyping("b")
	ok, w = d.Sound(bad)
	if ok {
		t.Fatal("b should be unsound")
	}
	if d.Target.Accepts(w) {
		t.Errorf("soundness witness %v should be outside the target", w)
	}
}

func TestCompatibility(t *testing.T) {
	// No way to read the kernel: incompatible.
	d := MustWordDesign("a b", "c f1")
	if d.Perfect().Compatible() {
		t.Error("design should be incompatible")
	}
	if _, ok := d.LocalTyping(); ok {
		t.Error("incompatible design has no local typing")
	}
	d2 := MustWordDesign("a b", "a f1")
	if !d2.Perfect().Compatible() {
		t.Error("design should be compatible")
	}
}
