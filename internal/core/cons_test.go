package core

import (
	"math/rand"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/xmltree"
)

// typeFromGrammar parses an arrow grammar as an EDTD type for a typing.
func typeFromGrammar(t testing.TB, src string) *schema.EDTD {
	t.Helper()
	e, err := schema.ParseEDTD(schema.KindNRE, src)
	if err != nil {
		t.Fatalf("ParseEDTD: %v", err)
	}
	return e
}

func TestComposeExample1(t *testing.T) {
	// Example 1: T = s0(a f1 c f2), π1(s1) = b*, π2(s2) = d*.
	k := axml.MustParseKernel("s0(a f1 c f2)")
	typing := Typing{
		typeFromGrammar(t, "root s1\ns1 -> b*"),
		typeFromGrammar(t, "root s2\ns2 -> d*"),
	}
	comp, err := Compose(k, typing)
	if err != nil {
		t.Fatal(err)
	}
	// extT(τ1,τ2) = {s0(a bⁿ c dᵐ)}.
	for _, c := range []struct {
		tree string
		want bool
	}{
		{"s0(a c)", true},
		{"s0(a b b c d)", true},
		{"s0(a b c d d d)", true},
		{"s0(a b c b d)", false},
		{"s0(b a c)", false},
		{"s0(a c d b)", false},
	} {
		got := comp.Validate(xmltree.MustParse(c.tree)) == nil
		if got != c.want {
			t.Errorf("T(τn) on %s = %v, want %v", c.tree, got, c.want)
		}
	}
	// Example 1 concludes (τ1, τ2) is dRE-DTD-consistent with T, with
	// typeT = s0 → a b* c d*.
	res, err := ConsDTD(k, DTDTyping(
		schema.MustParseDTD(schema.KindDRE, "root s1\ns1 -> b*"),
		schema.MustParseDTD(schema.KindDRE, "root s2\ns2 -> d*"),
	), schema.KindDRE)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("Example 1 should be dRE-DTD-consistent: %s", res.Reason)
	}
	want := schema.MustParseDTD(schema.KindDRE, "root s0\ns0 -> a, b*, c, d*")
	if ok, why := schema.EquivalentDTD(res.DTD, want); !ok {
		t.Errorf("typeT wrong: %s\ngot:\n%s", why, res.DTD)
	}
}

func TestComposeTheorem32Property(t *testing.T) {
	// Theorem 3.2: [T(τn)] = extT(τn). Sample random extensions tᵢ ⊨ τᵢ
	// and check membership; also sample invalid extensions.
	k := axml.MustParseKernel("s0(f1 a(b f2) c)")
	// Example 6's typing: τ1 describes b d+ a(b+)*, τ2 describes b*.
	typing := Typing{
		typeFromGrammar(t, "root s1\ns1 -> b1, d1+, a1*\na1 : a -> b1+\nb1 : b -> ε\nd1 : d -> ε"),
		typeFromGrammar(t, "root s2\ns2 -> b2*\nb2 : b -> ε"),
	}
	comp, err := Compose(k, typing)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	randTree1 := func() *xmltree.Tree {
		// Valid for τ1: s1(b d+ a(b+)*).
		root := xmltree.New("s1", xmltree.Leaf("b"))
		for i := 0; i <= r.Intn(2); i++ {
			root.Children = append(root.Children, xmltree.Leaf("d"))
		}
		for i := r.Intn(3); i > 0; i-- {
			a := xmltree.New("a", xmltree.Leaf("b"))
			for j := r.Intn(2); j > 0; j-- {
				a.Children = append(a.Children, xmltree.Leaf("b"))
			}
			root.Children = append(root.Children, a)
		}
		return root
	}
	randTree2 := func() *xmltree.Tree {
		root := xmltree.New("s2")
		for i := r.Intn(4); i > 0; i-- {
			root.Children = append(root.Children, xmltree.Leaf("b"))
		}
		return root
	}
	for trial := 0; trial < 60; trial++ {
		t1, t2 := randTree1(), randTree2()
		if typing[0].Validate(t1) != nil || typing[1].Validate(t2) != nil {
			t.Fatal("generator produced invalid local trees")
		}
		ext := k.MustExtend(map[string]*xmltree.Tree{"f1": t1, "f2": t2})
		if comp.Validate(ext) != nil {
			t.Fatalf("valid extension rejected: %s", ext)
		}
		// Mutate: drop the mandatory d — extension must become invalid.
		bad1 := t1.Clone()
		var kept []*xmltree.Tree
		removed := false
		for _, c := range bad1.Children {
			if c.Label == "d" && !removed {
				removed = true
				continue
			}
			kept = append(kept, c)
		}
		bad1.Children = kept
		if typing[0].Validate(bad1) == nil {
			continue // still valid (had 2 d's)
		}
		extBad := k.MustExtend(map[string]*xmltree.Tree{"f1": bad1, "f2": t2})
		if comp.Validate(extBad) == nil {
			t.Fatalf("invalid extension accepted: %s", extBad)
		}
	}
}

func TestConsSDTDExample6(t *testing.T) {
	// Example 6: the composed type is an nRE-SDTD (consistent).
	k := axml.MustParseKernel("s0(f1 a(b f2) c)")
	typing := Typing{
		typeFromGrammar(t, "root s1\ns1 -> b1, d1+, a1*\na1 : a -> b1+\nb1 : b -> ε\nd1 : d -> ε"),
		typeFromGrammar(t, "root s2\ns2 -> b2*\nb2 : b -> ε"),
	}
	res, err := ConsSDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("Example 6 should be SDTD-consistent: %s", res.Reason)
	}
	// typeT ≡ T(τn).
	comp, _ := Compose(k, typing)
	if ok, w := schema.EquivalentEDTD(res.EDTD, comp); !ok {
		t.Errorf("typeT differs from T(τn) on %s", w)
	}
	if ok, el := res.EDTD.IsSingleType(); !ok {
		t.Errorf("typeT not single-type (element %s)", el)
	}
}

func TestConsSDTDInconsistent(t *testing.T) {
	// T = s0(a(b) f1 a(c)): no R-DTD (and with distinct a-subtrees forced,
	// no merge possible when f1's trees make a third a-format required at
	// the same context)… the paper's crisper case: T = s0(a(f1) a(f2))
	// with [τ1] = {s1(b)}, [τ2] = {s2(c)}: the two a-nodes need different
	// contents at the same ancestor string — not single-type expressible.
	k := axml.MustParseKernel("s0(a(f1) a(f2))")
	typing := Typing{
		typeFromGrammar(t, "root s1\ns1 -> b"),
		typeFromGrammar(t, "root s2\ns2 -> c"),
	}
	res, err := ConsSDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Fatal("s0(a(b) a(c)) should not be SDTD-consistent")
	}
	// With [τ2] = {s2(b)} it becomes consistent (both a's identical).
	typing[1] = typeFromGrammar(t, "root s2\ns2 -> b")
	res, err = ConsSDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("s0(a(b) a(b)) should be SDTD-consistent: %s", res.Reason)
	}
}

func TestConsDTDSection23Examples(t *testing.T) {
	// From Section 2.3: for T = s0(a(b) f1 a(c)) no typing makes an R-DTD.
	k := axml.MustParseKernel("s0(a(b) f1 a(c))")
	typing := Typing{typeFromGrammar(t, "root s1\ns1 -> ε")}
	res, err := ConsDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Fatal("s0(a(b) … a(c)) should not be DTD-consistent")
	}
	// And T = s0(a(f1) a(f2)) with equal typings is DTD-consistent.
	k2 := axml.MustParseKernel("s0(a(f1) a(f2))")
	typing2 := Typing{
		typeFromGrammar(t, "root s1\ns1 -> b"),
		typeFromGrammar(t, "root s2\ns2 -> b"),
	}
	res, err = ConsDTD(k2, typing2, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("s0(a(b) a(b)) should be DTD-consistent: %s", res.Reason)
	}
	if err := res.DTD.Validate(xmltree.MustParse("s0(a(b) a(b))")); err != nil {
		t.Errorf("typeT rejects the only extension: %v", err)
	}
}

// TestConsAgainstOracles differentially tests the merge-based deciders
// against the candidate-and-verify oracles on a battery of designs.
func TestConsAgainstOracles(t *testing.T) {
	cases := []struct {
		kernel string
		typing []string
	}{
		{"s0(a f1 c f2)", []string{"root s1\ns1 -> b*", "root s2\ns2 -> d*"}},
		{"s0(a(f1) a(f2))", []string{"root s1\ns1 -> b", "root s2\ns2 -> c"}},
		{"s0(a(f1) a(f2))", []string{"root s1\ns1 -> b", "root s2\ns2 -> b"}},
		{"s0(f1 a(b f2) c)", []string{
			"root s1\ns1 -> b1, d1+, a1*\na1 : a -> b1+\nb1 : b -> ε\nd1 : d -> ε",
			"root s2\ns2 -> b2*\nb2 : b -> ε"}},
		{"s0(a(f1) a(f2))", []string{
			"root s1\ns1 -> b1\nb1 : b -> c?",
			"root s2\ns2 -> b2\nb2 : b -> c | ε"}}, // same language, different regexes
		{"s0(a(f1) b(f2))", []string{
			"root s1\ns1 -> x", "root s2\ns2 -> x*"}},
		{"s0(f1 a f2)", []string{
			"root s1\ns1 -> a*", "root s2\ns2 -> a*"}},
	}
	for i, c := range cases {
		k := axml.MustParseKernel(c.kernel)
		typing := make(Typing, len(c.typing))
		for j, src := range c.typing {
			typing[j] = typeFromGrammar(t, src)
		}
		merge, err := ConsSDTD(k, typing, schema.KindNFA)
		if err != nil {
			t.Fatalf("case %d: ConsSDTD: %v", i, err)
		}
		oracle, err := ConsSDTDCandidate(k, typing)
		if err != nil {
			t.Fatalf("case %d: ConsSDTDCandidate: %v", i, err)
		}
		if merge.Consistent != oracle.Consistent {
			t.Errorf("case %d: SDTD deciders disagree: merge=%v oracle=%v (%s | %s)",
				i, merge.Consistent, oracle.Consistent, merge.Reason, oracle.Reason)
		}
		if merge.Consistent && oracle.Consistent {
			if ok, w := schema.EquivalentEDTD(merge.EDTD, oracle.EDTD); !ok {
				t.Errorf("case %d: typeT versions differ on %s", i, w)
			}
		}
		mergeDTD, err := ConsDTD(k, typing, schema.KindNFA)
		if err != nil {
			t.Fatalf("case %d: ConsDTD: %v", i, err)
		}
		oracleDTD, err := ConsDTDCandidate(k, typing)
		if err != nil {
			t.Fatalf("case %d: ConsDTDCandidate: %v", i, err)
		}
		if mergeDTD.Consistent != oracleDTD.Consistent {
			t.Errorf("case %d: DTD deciders disagree: merge=%v oracle=%v (%s | %s)",
				i, mergeDTD.Consistent, oracleDTD.Consistent, mergeDTD.Reason, oracleDTD.Reason)
		}
		if mergeDTD.Consistent && oracleDTD.Consistent {
			if ok, why := schema.EquivalentDTD(mergeDTD.DTD, oracleDTD.DTD); !ok {
				t.Errorf("case %d: DTD typeT versions differ: %s", i, why)
			}
		}
	}
}

func TestConsDFAConcatBlowup(t *testing.T) {
	// Table 2 (dFA rows): typeT can blow up exponentially. The classical
	// family: [τ1] = (a|b)* a over dFAs, [τ2] = (a|b)^m; their
	// concatenation needs ~2^m DFA states.
	m := 5
	re2 := "(a|b)"
	for i := 1; i < m; i++ {
		re2 += " (a|b)"
	}
	k := axml.MustParseKernel("s0(f1 f2)")
	typing := DTDTyping(
		schema.MustParseDTD(schema.KindDFA, "root s1\ns1 -> (a|b)* a"),
		schema.MustParseDTD(schema.KindDFA, "root s2\ns2 -> "+re2),
	)
	res, err := ConsDTD(k, typing, schema.KindDFA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("concat design should be DTD-consistent: %s", res.Reason)
	}
	size := res.DTD.Rule("s0").Size()
	if size < 1<<m {
		t.Errorf("dFA typeT root content has size %d, expected ≥ 2^%d", size, m)
	}
	// The nFA version stays linear.
	resN, err := ConsDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if nSize := resN.DTD.Rule("s0").Size(); nSize >= size {
		t.Errorf("nFA typeT (%d) should be smaller than dFA typeT (%d)", nSize, size)
	}
}

func TestConsSDTDPaperGapE5(t *testing.T) {
	// Regression for DESIGN.md erratum E5 (found by the differential
	// stress test): T = s0(f1 f2), [τ1] = s1(b?) with b a leaf,
	// [τ2] = s2((b(d*))*). The Theorem 3.10 merge algorithm as printed
	// would answer “no” because the two b-witnesses have different
	// subtree languages; the extension language is s0((b(d*))*) — SDTD-
	// and even DTD-expressible.
	k := axml.MustParseKernel("s0(f1 f2)")
	typing := Typing{
		typeFromGrammar(t, "root s1\ns1 -> b?"),
		typeFromGrammar(t, "root s2\ns2 -> b*\nb -> d*"),
	}
	res, err := ConsSDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("E5 design must be SDTD-consistent: %s", res.Reason)
	}
	comp, _ := Compose(k, typing)
	if ok, w := schema.EquivalentEDTD(res.EDTD, comp); !ok {
		t.Fatalf("typeT differs from T(τn) on %s", w)
	}
	dres, err := ConsDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Consistent {
		t.Fatalf("E5 design must be DTD-consistent: %s", dres.Reason)
	}
	want := schema.MustParseDTD(schema.KindNFA, "root s0\ns0 -> b*\nb -> d*")
	if ok, why := schema.EquivalentDTD(dres.DTD, want); !ok {
		t.Fatalf("typeT should be s0 → b*, b → d*: %s", why)
	}
}

func TestConsDREFailsOnOneAmbiguity(t *testing.T) {
	// Table 2's dRE rows: a design whose composed content model is not
	// one-unambiguous is not dRE-consistent even though it is
	// nFA-consistent. [τ1]·[τ2] = (a|b)*a(a|b) — the canonical
	// non-one-unambiguous language.
	k := axml.MustParseKernel("s0(f1 f2)")
	typing := DTDTyping(
		schema.MustParseDTD(schema.KindDRE, "root s1\ns1 -> (b* a)+"),
		schema.MustParseDTD(schema.KindDRE, "root s2\ns2 -> a | b"),
	)
	res, err := ConsDTD(k, typing, schema.KindDRE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Fatal("(a|b)*a(a|b) has no dRE; design must be dRE-inconsistent")
	}
	// The same design is nFA-consistent.
	resN, err := ConsDTD(k, typing, schema.KindNFA)
	if err != nil {
		t.Fatal(err)
	}
	if !resN.Consistent {
		t.Fatalf("design should be nFA-DTD-consistent: %s", resN.Reason)
	}
}

func TestCheckTyping(t *testing.T) {
	k := axml.MustParseKernel("s0(f1)")
	if err := CheckTyping(k.NumFuncs(), Typing{}); err == nil {
		t.Error("wrong arity accepted")
	}
	// Root name occurring in a content model is rejected.
	bad := typeFromGrammar(t, "root s1\ns1 -> a s1?")
	if err := CheckTyping(1, Typing{bad}); err == nil {
		t.Error("recursive root accepted")
	}
	good := typeFromGrammar(t, "root s1\ns1 -> a")
	if err := CheckTyping(1, Typing{good}); err != nil {
		t.Errorf("valid typing rejected: %v", err)
	}
}
