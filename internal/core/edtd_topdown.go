package core

import (
	"fmt"
	"sort"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// This file implements the top-down design problems for R-EDTDs
// (Section 4.3): the global type is first normalized (Lemma 4.10), then
// candidate assignments κ from kernel nodes to sets of specialized names
// induce box designs D^x_κ (Definition 19); locality of the tree design is
// equivalent to the existence of a κ whose box designs are all local
// (Theorem 4.13), and the perfect κ can be computed top-down
// (Corollary 4.16).

// EDTDDesign is a top-down R-EDTD design ⟨τ, T⟩.
type EDTDDesign struct {
	Type              *schema.EDTD
	Kernel            *axml.Kernel
	AllowTrivialTypes bool

	norm *schema.EDTD
}

// Normalized returns the normalized version of the design's type, built
// on first use.
func (d *EDTDDesign) Normalized() (*schema.EDTD, error) {
	if d.norm == nil {
		n, err := schema.Normalize(d.Type, schema.KindNFA)
		if err != nil {
			return nil, err
		}
		d.norm = n
	}
	return d.norm, nil
}

// Kappa assigns to each kernel element node a nonempty set of specialized
// names of the normalized type (Definition 19), keyed by node pointer.
type Kappa map[*xmltree.Tree][]string

// kernelElementNodes lists the kernel's element nodes in document order.
func kernelElementNodes(k *axml.Kernel) []*xmltree.Tree {
	var out []*xmltree.Tree
	k.Tree().Walk(func(n *xmltree.Tree, _ []string) bool {
		if !k.IsFunc(n.Label) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// boxDesigns builds the box designs D^x_κ for every kernel element node
// (Definition 19): the target is π(κ(x)) = ∪_{ã∈κ(x)} π(ã), the kernel
// box has one set position κ(y) per element child y and one function slot
// per function child.
func (d *EDTDDesign) boxDesigns(norm *schema.EDTD, kappa Kappa) ([]*NodeDesign, error) {
	funcIdx := map[string]int{}
	for i, f := range d.Kernel.Funcs() {
		funcIdx[f] = i
	}
	var out []*NodeDesign
	var err error
	d.Kernel.Tree().Walk(func(n *xmltree.Tree, anc []string) bool {
		if d.Kernel.IsFunc(n.Label) {
			return true
		}
		names := kappa[n]
		if len(names) == 0 {
			err = fmt.Errorf("core: κ undefined at node %s", n.Label)
			return false
		}
		var parts []*strlang.NFA
		for _, name := range names {
			parts = append(parts, norm.Rule(name).Lang())
		}
		target := strlang.UnionAll(parts...)
		var boxes []strlang.Box
		var funcs []string
		var idx []int
		boxes = append(boxes, strlang.Box{})
		for _, c := range n.Children {
			if d.Kernel.IsFunc(c.Label) {
				funcs = append(funcs, c.Label)
				idx = append(idx, funcIdx[c.Label])
				boxes = append(boxes, strlang.Box{})
			} else {
				last := &boxes[len(boxes)-1]
				*last = append(*last, append([]strlang.Symbol(nil), kappa[c]...))
			}
		}
		kb, kbErr := axml.NewKernelBox(boxes, funcs)
		if kbErr != nil {
			err = kbErr
			return false
		}
		bd := NewBoxDesign(target, kb)
		bd.AllowTrivialTypes = d.AllowTrivialTypes
		out = append(out, &NodeDesign{
			Path:    append([]string(nil), anc...),
			Witness: fmt.Sprintf("{%v}", names),
			Design:  &WordDesign{BoxDesign: *bd},
			FuncIdx: idx,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PerfectKappa builds the κ of Corollary 4.16 top-down: κ(root) is the
// start set matching the root label; for a node x with κ(x) known, the
// children's sets are read off the alphabet of [r(x)] ∩ [τ(x)] with
// position-tagged symbols. A nil result means some node gets an empty set,
// so no sound typing (hence no perfect typing) exists.
func (d *EDTDDesign) PerfectKappa() (Kappa, error) {
	norm, err := d.Normalized()
	if err != nil {
		return nil, err
	}
	kappa := Kappa{}
	root := d.Kernel.Tree()
	var starts []string
	for _, s := range norm.Starts {
		if norm.Elem(s) == root.Label {
			starts = append(starts, s)
		}
	}
	if len(starts) == 0 {
		return nil, nil
	}
	kappa[root] = starts
	var rec func(n *xmltree.Tree) bool
	rec = func(n *xmltree.Tree) bool {
		if len(n.Children) == 0 {
			return true
		}
		// r(x): position-tagged box-with-stars; τ(x): π(κ(x)) with symbols
		// expanded to all position tags.
		m := len(n.Children)
		tag := func(name string, j int) string { return fmt.Sprintf("%s|%d", name, j) }
		rx := strlang.EpsLang()
		for j, c := range n.Children {
			var step *strlang.NFA
			if d.Kernel.IsFunc(c.Label) {
				// Any sequence of names, all tagged j.
				var syms []strlang.Symbol
				for _, name := range norm.SpecializedNames() {
					syms = append(syms, tag(name, j))
				}
				step = strlang.Star(strlang.SetLang(syms))
			} else {
				var syms []strlang.Symbol
				for _, name := range norm.Specializations(c.Label) {
					syms = append(syms, tag(name, j))
				}
				if len(syms) == 0 {
					return false
				}
				step = strlang.SetLang(syms)
			}
			rx = strlang.Concat(rx, step)
		}
		var parts []*strlang.NFA
		for _, name := range kappa[n] {
			parts = append(parts, norm.Rule(name).Lang())
		}
		tauX := strlang.UnionAll(parts...)
		// Expand each symbol of τ(x) to all position tags.
		expanded := expandTags(tauX, m, tag)
		inter := strlang.Intersect(rx, expanded)
		useful := map[string]bool{}
		for _, s := range inter.UsefulSymbols() {
			useful[s] = true
		}
		for j, c := range n.Children {
			if d.Kernel.IsFunc(c.Label) {
				continue
			}
			var set []string
			for _, name := range norm.Specializations(c.Label) {
				if useful[tag(name, j)] {
					set = append(set, name)
				}
			}
			if len(set) == 0 {
				return false
			}
			sort.Strings(set)
			kappa[c] = set
		}
		for _, c := range n.Children {
			if !d.Kernel.IsFunc(c.Label) && !rec(c) {
				return false
			}
		}
		return true
	}
	if !rec(root) {
		return nil, nil
	}
	return kappa, nil
}

// expandTags rewrites an NFA over names into one over position-tagged
// names, duplicating each transition for all m positions.
func expandTags(nfa *strlang.NFA, m int, tag func(string, int) string) *strlang.NFA {
	out := strlang.NewNFA()
	for q := 1; q < nfa.NumStates(); q++ {
		out.AddState()
	}
	out.SetStart(nfa.Start())
	for q := range nfa.Finals().All() {
		out.MarkFinal(q)
	}
	nfa.EachTransition(func(from int, s strlang.Symbol, to int) {
		for j := 0; j < m; j++ {
			out.AddTransition(from, tag(s, j), to)
		}
	})
	for q := 0; q < nfa.NumStates(); q++ {
		for _, t := range nfa.EpsSucc(q) {
			out.AddEps(q, int(t))
		}
	}
	return out
}

// edtdTypeFor wraps a word language over the normalized names as the EDTD
// type of a function.
func edtdTypeFor(norm *schema.EDTD, i int, lang *strlang.NFA) *schema.EDTD {
	e := norm.Clone()
	root := freshRoot(e, i)
	e.Starts = []string{root}
	e.Names[root] = root
	e.Rules[root] = schema.NewContentNFA(lang)
	return e
}

// typingFromBoxWords assembles per-node box word typings into a tree
// typing over the normalized type.
func (d *EDTDDesign) typingFromBoxWords(norm *schema.EDTD, designs []*NodeDesign, perNode []WordTyping) Typing {
	wt := combineWordTypings(d.Kernel.NumFuncs(), designs, perNode)
	out := make(Typing, len(wt))
	for i, lang := range wt {
		out[i] = edtdTypeFor(norm, i, lang)
	}
	return out
}

// verifyLocal composes the typing and checks T(τn) ≡ τ.
func (d *EDTDDesign) verifyLocal(typing Typing) bool {
	comp, err := Compose(d.Kernel, typing)
	if err != nil {
		return false
	}
	ok, _ := schema.EquivalentEDTD(comp, d.Type)
	return ok
}

// ExistsPerfect decides ∃-perf[R-EDTD] (Corollary 4.16): build the perfect
// κ, require a perfect typing for every box design, and verify the
// combination.
func (d *EDTDDesign) ExistsPerfect() (Typing, bool, error) {
	norm, err := d.Normalized()
	if err != nil {
		return nil, false, err
	}
	kappa, err := d.PerfectKappa()
	if err != nil {
		return nil, false, err
	}
	if kappa == nil {
		return nil, false, nil
	}
	designs, err := d.boxDesigns(norm, kappa)
	if err != nil {
		return nil, false, err
	}
	perNode := make([]WordTyping, len(designs))
	for i, nd := range designs {
		wt, ok := nd.Design.PerfectTyping()
		if !ok {
			return nil, false, nil
		}
		perNode[i] = wt
	}
	typing := d.typingFromBoxWords(norm, designs, perNode)
	if !d.verifyLocal(typing) {
		return nil, false, nil
	}
	return typing, true, nil
}

// IsPerfect decides perf[R-EDTD] (Theorem 7.9): the perfect typing is
// computed and compared componentwise.
func (d *EDTDDesign) IsPerfect(typing Typing) (bool, error) {
	perfect, ok, err := d.ExistsPerfect()
	if err != nil || !ok {
		return false, err
	}
	return EquivTyping(typing, perfect), nil
}

// IsLocal decides loc[R-EDTD] (Theorem 4.19): T(τn) ≡ τ.
func (d *EDTDDesign) IsLocal(typing Typing) (bool, error) {
	comp, err := Compose(d.Kernel, typing)
	if err != nil {
		return false, err
	}
	ok, _ := schema.EquivalentEDTD(comp, d.Type)
	return ok, nil
}

// allKappas enumerates every κ (nonempty subsets of Σ̃d(lab(x)) per
// element node). Exponential, as the NP^C oracle machine of
// Corollary 4.14 requires.
func (d *EDTDDesign) allKappas(norm *schema.EDTD) []Kappa {
	nodes := kernelElementNodes(d.Kernel)
	options := make([][][]string, len(nodes))
	for i, n := range nodes {
		specs := norm.Specializations(n.Label)
		var subsets [][]string
		for mask := 1; mask < 1<<len(specs); mask++ {
			var set []string
			for b := range specs {
				if mask&(1<<b) != 0 {
					set = append(set, specs[b])
				}
			}
			subsets = append(subsets, set)
		}
		if len(subsets) == 0 {
			return nil
		}
		options[i] = subsets
	}
	var out []Kappa
	choice := make([]int, len(nodes))
	for {
		kappa := Kappa{}
		for i, n := range nodes {
			kappa[n] = options[i][choice[i]]
		}
		out = append(out, kappa)
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(options[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return out
		}
	}
}

// ExistsLocal decides ∃-loc[R-EDTD] (Corollary 4.14): guess κ, solve the
// box designs, verify the combination.
func (d *EDTDDesign) ExistsLocal() (Typing, bool, error) {
	if typing, ok, err := d.ExistsPerfect(); err != nil || ok {
		return typing, ok, err
	}
	norm, err := d.Normalized()
	if err != nil {
		return nil, false, err
	}
	for _, kappa := range d.allKappas(norm) {
		designs, err := d.boxDesigns(norm, kappa)
		if err != nil {
			continue
		}
		perNode := make([]WordTyping, len(designs))
		ok := true
		for i, nd := range designs {
			wt, found := nd.Design.LocalTyping()
			if !found {
				ok = false
				break
			}
			perNode[i] = wt
		}
		if !ok {
			continue
		}
		typing := d.typingFromBoxWords(norm, designs, perNode)
		if d.verifyLocal(typing) {
			return typing, true, nil
		}
	}
	return nil, false, nil
}

// MaximalLocalTypings enumerates the maximal local typings of the design:
// per κ, the cross products of per-node maximal local box typings that
// verify locality; dominated typings (componentwise tree-language
// inclusion) are removed across κ's.
func (d *EDTDDesign) MaximalLocalTypings() ([]Typing, error) {
	norm, err := d.Normalized()
	if err != nil {
		return nil, err
	}
	var candidates []Typing
	for _, kappa := range d.allKappas(norm) {
		designs, err := d.boxDesigns(norm, kappa)
		if err != nil {
			continue
		}
		perNode := make([][]WordTyping, len(designs))
		ok := true
		for i, nd := range designs {
			perNode[i] = nd.Design.MaximalLocalTypings()
			if len(perNode[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		choice := make([]int, len(designs))
		for {
			pick := make([]WordTyping, len(designs))
			for i := range designs {
				pick[i] = perNode[i][choice[i]]
			}
			typing := d.typingFromBoxWords(norm, designs, pick)
			if d.verifyLocal(typing) {
				candidates = append(candidates, typing)
			}
			i := 0
			for ; i < len(choice); i++ {
				choice[i]++
				if choice[i] < len(perNode[i]) {
					break
				}
				choice[i] = 0
			}
			if i == len(choice) {
				break
			}
		}
	}
	// Remove duplicates and dominated candidates.
	var out []Typing
	for i, t := range candidates {
		keep := true
		for j, u := range candidates {
			if i == j {
				continue
			}
			if LeqTyping(t, u) && !EquivTyping(t, u) {
				keep = false
				break
			}
			if j < i && EquivTyping(t, u) {
				keep = false // duplicate, keep the first
				break
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	return out, nil
}

// ExistsMaximalLocal decides ∃-ml[R-EDTD].
func (d *EDTDDesign) ExistsMaximalLocal() (Typing, bool, error) {
	ts, err := d.MaximalLocalTypings()
	if err != nil {
		return nil, false, err
	}
	if len(ts) == 0 {
		return nil, false, nil
	}
	return ts[0], true, nil
}

// IsMaximalLocal decides ml[R-EDTD] (Theorem 7.10's exhaustive check):
// the typing is local and equivalent to one of the maximal local typings.
func (d *EDTDDesign) IsMaximalLocal(typing Typing) (bool, error) {
	local, err := d.IsLocal(typing)
	if err != nil || !local {
		return false, err
	}
	ts, err := d.MaximalLocalTypings()
	if err != nil {
		return false, err
	}
	for _, t := range ts {
		if EquivTyping(typing, t) {
			return true, nil
		}
	}
	return false, nil
}
