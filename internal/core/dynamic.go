package core

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/strlang"
)

// This file prototypes the Section 8 outlook: kernel documents that
// change over time because a *type may mention function symbols in its
// own specification*. The paper's example: w = af with f typed by
// τ_f = f? b a+ — each materialization may reintroduce the call, and the
// set of documents reachable by repeated extension is a f? (ba+)+, which
// differs from the naive one-step reading.
//
// A self-referential type is a regular language over Σ ∪ {f}. In general
// the reachable-document language is context-free (τ_f = a f b yields
// aⁿbⁿ), so we solve exactly the regular cases the paper's example lives
// in: *left-linear* (f occurs only as the first symbol of a word) and
// *right-linear* (only as the last), each with at most one occurrence per
// word. Writing τ_f = f·R ∪ N (left-linear; N is the f-free part), the
// least fixpoint of X = τ_f[f ↦ X] is N·R*, and the documents reachable
// after at least one extension are (N ∪ f·R)·R*.

// DynamicResult holds the limit languages of a self-referential typing.
type DynamicResult struct {
	// Materialized is the set of fully materialized (f-free) resource
	// results: the least fixpoint N·R* (or R*·N).
	Materialized *strlang.NFA
	// Reachable is the set of resource results after one or more
	// extension steps; unexpanded calls may remain, so f may occur.
	Reachable *strlang.NFA
}

// SolveRecursiveTyping solves the fixpoint of a self-referential type
// τ_f over Σ ∪ {f}. It fails unless τ_f is left- or right-linear in f.
func SolveRecursiveTyping(f strlang.Symbol, tau *strlang.NFA) (*DynamicResult, error) {
	full := tau.Alphabet()
	var sigma []strlang.Symbol
	for _, s := range full {
		if s != f {
			sigma = append(sigma, s)
		}
	}
	sigmaStar := strlang.UniversalLang(sigma)
	fLang := strlang.SymbolLang(f)
	// At most one f per word.
	anyStar := strlang.UniversalLang(full)
	twoF := strlang.ConcatAll(anyStar, fLang, anyStar, fLang, anyStar)
	if !strlang.Intersect(tau, twoF).IsEmpty() {
		return nil, fmt.Errorf("core: type has words with several %s occurrences; the fixpoint is context-free in general", f)
	}
	// N: the f-free part.
	n := strlang.Intersect(tau, sigmaStar)
	leftViol := strlang.ConcatAll(strlang.Plus(strlang.SetLang(sigma)), fLang, anyStar)
	rightViol := strlang.ConcatAll(anyStar, fLang, strlang.Plus(strlang.SetLang(sigma)))
	leftLinear := strlang.Intersect(tau, leftViol).IsEmpty()
	rightLinear := strlang.Intersect(tau, rightViol).IsEmpty()
	switch {
	case leftLinear:
		// τ = f·R ∪ N with R = the suffixes after the leading f.
		r := quotientAfterLeading(tau, f)
		rStar := strlang.Star(r)
		return &DynamicResult{
			Materialized: strlang.Concat(n, rStar),
			Reachable:    strlang.Concat(strlang.Union(n, strlang.Concat(fLang, r)), rStar),
		}, nil
	case rightLinear:
		// τ = R·f ∪ N mirrored.
		r := quotientBeforeTrailing(tau, f)
		rStar := strlang.Star(r)
		return &DynamicResult{
			Materialized: strlang.Concat(rStar, n),
			Reachable:    strlang.Concat(rStar, strlang.Union(n, strlang.Concat(r, fLang))),
		}, nil
	}
	return nil, fmt.Errorf("core: type is neither left- nor right-linear in %s; the fixpoint may be context-free", f)
}

// quotientAfterLeading returns {u : f·u ∈ [tau]}.
func quotientAfterLeading(tau *strlang.NFA, f strlang.Symbol) *strlang.NFA {
	out := tau.Clone()
	set := tau.Run([]strlang.Symbol{f})
	fresh := out.AddState()
	for q := range set.All() {
		out.AddEps(fresh, q)
	}
	out.SetStart(fresh)
	trimmed, _ := out.Trim()
	return trimmed
}

// quotientBeforeTrailing returns {u : u·f ∈ [tau]}.
func quotientBeforeTrailing(tau *strlang.NFA, f strlang.Symbol) *strlang.NFA {
	out := tau.Clone()
	// New finals: states with an f-transition (possibly via ε) into a
	// final state.
	newFinals := strlang.NewIntSet()
	for q := 0; q < out.NumStates(); q++ {
		after := out.Step(out.Closure(strlang.NewIntSet(q)), f)
		if after.Intersects(out.Finals()) {
			newFinals.Add(q)
		}
	}
	for q := range out.Finals().Copy().All() {
		out.ClearFinal(q)
	}
	for q := range newFinals.All() {
		out.MarkFinal(q)
	}
	trimmed, _ := out.Trim()
	return trimmed
}

// DynamicExtensionLang applies the solved fixpoint to a kernel string
// containing the single function f: the languages of fully and partially
// materialized documents obtainable by repeated extension (the paper's
// af?(ba+)+ example).
func DynamicExtensionLang(ks *axml.KernelString, tau *strlang.NFA) (*DynamicResult, error) {
	if ks.NumFuncs() != 1 {
		return nil, fmt.Errorf("core: dynamic analysis supports exactly one function, kernel has %d", ks.NumFuncs())
	}
	f := ks.Funcs[0]
	res, err := SolveRecursiveTyping(f, tau)
	if err != nil {
		return nil, err
	}
	wrap := func(x *strlang.NFA) *strlang.NFA {
		return strlang.ConcatAll(strlang.WordLang(ks.Words[0]), x, strlang.WordLang(ks.Words[1]))
	}
	return &DynamicResult{
		Materialized: wrap(res.Materialized),
		Reachable:    wrap(res.Reachable),
	}, nil
}
