package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
)

// TestStressRouteAgreement fuzzes random DTD designs through the three
// independent top-down routes (Theorems 4.2, 4.5, Section 4.3), which
// must agree on ∃-loc and ∃-perf.
func TestStressRouteAgreement(t *testing.T) {
	kernels := []string{"s(f1)", "s(a f1)", "s(f1 f2)", "s(f1 a(f2))", "s(a(f1) b)"}
	roots := []string{"a* b?", "a b", "a*", "a | b", "a+ b*", "b* a", "(a b)*"}
	subs := []string{"", "\na -> c?", "\na -> c*\nb -> ε"}
	for seed := int64(50); seed < 56; seed++ {
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 15; trial++ {
			kSrc := kernels[r.Intn(len(kernels))]
			dtdSrc := fmt.Sprintf("root s\ns -> %s%s", roots[r.Intn(len(roots))], subs[r.Intn(len(subs))])
			dtd := schema.MustParseDTD(schema.KindNRE, dtdSrc)
			kernel := axml.MustParseKernel(kSrc)
			dD := &DTDDesign{Type: dtd, Kernel: kernel}
			dS := &SDTDDesign{Type: dtd.ToEDTD(), Kernel: kernel}
			dE := &EDTDDesign{Type: dtd.ToEDTD(), Kernel: kernel}
			_, okD := dD.ExistsLocal()
			_, okS := dS.ExistsLocal()
			_, okE, err := dE.ExistsLocal()
			if err != nil {
				t.Fatalf("seed=%d %q over %s: %v", seed, dtdSrc, kSrc, err)
			}
			if okD != okS || okD != okE {
				t.Fatalf("seed=%d %q over %s: ∃-loc DTD=%v SDTD=%v EDTD=%v",
					seed, dtdSrc, kSrc, okD, okS, okE)
			}
			_, okD2 := dD.ExistsPerfect()
			_, okS2 := dS.ExistsPerfect()
			_, okE2, err := dE.ExistsPerfect()
			if err != nil {
				t.Fatalf("seed=%d %q over %s: %v", seed, dtdSrc, kSrc, err)
			}
			if okD2 != okS2 || okD2 != okE2 {
				t.Fatalf("seed=%d %q over %s: ∃-perf DTD=%v SDTD=%v EDTD=%v",
					seed, dtdSrc, kSrc, okD2, okS2, okE2)
			}
		}
	}
}

// TestStressPerfectCharacterizations: on designs where the Ω typing has
// no trivial component, the Theorem 6.5 Ω-characterization (literal mode)
// and the unique-maximal-sound characterization (convention mode) must
// agree.
func TestStressPerfectCharacterizations(t *testing.T) {
	kernels := []string{"f1", "a f1", "f1 f2", "f1 b f2", "a f1 c f2"}
	for seed := int64(200); seed < 206; seed++ {
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 25; trial++ {
			re := randomWordRegex(r, 2)
			kernel := kernels[r.Intn(len(kernels))]
			literal := MustWordDesign(re, kernel)
			literal.AllowTrivialTypes = true
			conv := MustWordDesign(re, kernel)
			if !literal.Perfect().Compatible() {
				continue
			}
			trivialOmega := false
			for _, o := range literal.Perfect().TypingOmega() {
				if isTrivialEps(o) {
					trivialOmega = true
					break
				}
			}
			if trivialOmega {
				continue // the modes legitimately differ here
			}
			_, okL := literal.PerfectTyping()
			pC, okC := conv.PerfectTyping()
			if okL != okC {
				// Convention mode may still find a perfect typing the Ω
				// test misses when Ω is inflated by ε-options of OTHER
				// slots; it must never find FEWER.
				if okL && !okC {
					t.Fatalf("seed=%d τ=%s w=%s: literal perfect but convention not", seed, re, kernel)
				}
				// Verify the extra perfect typing dominates all sound
				// tuples.
				for _, ms := range conv.MaximalSoundTypings() {
					if !LeqWord(ms, pC) {
						t.Fatalf("seed=%d τ=%s w=%s: convention perfect does not dominate", seed, re, kernel)
					}
				}
				continue
			}
			if okL && okC {
				pL, _ := literal.PerfectTyping()
				if !EquivWord(pL, pC) {
					t.Fatalf("seed=%d τ=%s w=%s: perfect typings differ between modes", seed, re, kernel)
				}
			}
		}
	}
}

func TestStressConsDifferential(t *testing.T) {
	kernels := []string{
		"s0(f1)", "s0(a f1)", "s0(f1 f2)", "s0(a(f1) b(f2))",
		"s0(a(f1) a(f2))", "s0(f1 a(f2))", "s0(a(b f1) f2)",
		"s0(a(f1 b) a(c f2))", "s0(a(a(f1)) f2)",
	}
	contents := []string{"b*", "b", "b?", "b c", "c*", "b | c", "ε", "b b"}
	subRules := []string{"", "\nb -> d?", "\nb -> d*", "\nc -> d", "\nb -> c?\nc -> ε"}
	for seed := int64(100); seed < 108; seed++ {
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 30; trial++ {
			kSrc := kernels[r.Intn(len(kernels))]
			k := axml.MustParseKernel(kSrc)
			typing := make(Typing, k.NumFuncs())
			var desc []string
			for i := range typing {
				src := fmt.Sprintf("root s%d\ns%d -> %s%s", i+1, i+1,
					contents[r.Intn(len(contents))], subRules[r.Intn(len(subRules))])
				typing[i] = schema.MustParseEDTD(schema.KindNRE, src)
				desc = append(desc, src)
			}
			merge, err := ConsSDTD(k, typing, schema.KindNFA)
			if err != nil {
				t.Fatalf("seed=%d T=%s typing=%q: %v", seed, kSrc, desc, err)
			}
			oracle, err := ConsSDTDCandidate(k, typing)
			if err != nil {
				t.Fatalf("seed=%d T=%s typing=%q: %v", seed, kSrc, desc, err)
			}
			if merge.Consistent != oracle.Consistent {
				t.Fatalf("seed=%d T=%s typing=%q: SDTD disagree merge=%v oracle=%v (%s|%s)",
					seed, kSrc, desc, merge.Consistent, oracle.Consistent, merge.Reason, oracle.Reason)
			}
			mergeDTD, err := ConsDTD(k, typing, schema.KindNFA)
			if err != nil {
				t.Fatalf("seed=%d T=%s typing=%q: %v", seed, kSrc, err, desc)
			}
			oracleDTD, err := ConsDTDCandidate(k, typing)
			if err != nil {
				t.Fatalf("seed=%d T=%s typing=%q: %v", seed, kSrc, err, desc)
			}
			if mergeDTD.Consistent != oracleDTD.Consistent {
				t.Fatalf("seed=%d T=%s typing=%q: DTD disagree merge=%v oracle=%v (%s|%s)",
					seed, kSrc, desc, mergeDTD.Consistent, oracleDTD.Consistent, mergeDTD.Reason, oracleDTD.Reason)
			}
		}
	}
}
