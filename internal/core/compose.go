package core

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// Compose builds the nFA-EDTD T(τn) of Section 3.1 for a kernel T and an
// EDTD-typing (τn), with [T(τn)] = extT(τn) (Theorem 3.2). The
// construction runs in polynomial time and the result is linear in the
// input (Proposition 3.1).
//
// Specialized names of the result: each kernel node x labeled a becomes
// the fresh witness "a^k" (k the preorder index of x); every non-root name
// ã of τᵢ becomes "ã@i" (making the Σ̃ᵢ disjoint, as the construction
// assumes).
func Compose(k *axml.Kernel, typing Typing) (*schema.EDTD, error) {
	if err := CheckTyping(k.NumFuncs(), typing); err != nil {
		return nil, err
	}
	funcs := k.Funcs()
	fnIndex := map[string]int{}
	for i, f := range funcs {
		fnIndex[f] = i
	}

	// Preorder ids for kernel nodes.
	nodeID := map[*xmltree.Tree]int{}
	counter := 0
	k.Tree().Walk(func(n *xmltree.Tree, _ []string) bool {
		nodeID[n] = counter
		counter++
		return true
	})
	witness := func(n *xmltree.Tree) string {
		return fmt.Sprintf("%s^%d", n.Label, nodeID[n])
	}
	imported := func(i int, name string) string {
		return fmt.Sprintf("%s@%d", name, i+1)
	}

	out := schema.NewEDTD(schema.KindNFA, witness(k.Tree()), k.Tree().Label)

	// Import the rules of each τᵢ, dropping the root name.
	for i, tau := range typing {
		start := tau.Starts[0]
		for _, name := range tau.SpecializedNames() {
			if name == start {
				continue
			}
			renamed := relabel(tau.Rule(name).Lang(), func(s string) string { return imported(i, s) })
			out.DeclareName(imported(i, name), tau.Elem(name))
			out.MustSetRule(imported(i, name), schema.NewContentNFA(renamed))
		}
	}

	// Rules for the kernel's witnesses.
	k.Tree().Walk(func(n *xmltree.Tree, _ []string) bool {
		if k.IsFunc(n.Label) {
			return true
		}
		w := witness(n)
		out.DeclareName(w, n.Label)
		if n.IsLeaf() {
			out.MustSetRule(w, schema.NewContentNFA(strlang.EpsLang()))
			return true
		}
		parts := make([]*strlang.NFA, 0, len(n.Children))
		for _, c := range n.Children {
			if i, isFn := fnIndex[c.Label]; isFn {
				root := RootContent(typing[i])
				parts = append(parts, relabel(root, func(s string) string { return imported(i, s) }))
			} else {
				parts = append(parts, strlang.SymbolLang(witness(c)))
			}
		}
		out.MustSetRule(w, schema.NewContentNFA(strlang.ConcatAll(parts...)))
		return true
	})
	return out, nil
}

// relabel rewrites an NFA's symbols by f.
func relabel(nfa *strlang.NFA, f func(string) string) *strlang.NFA {
	out := strlang.NewNFA()
	for q := 1; q < nfa.NumStates(); q++ {
		out.AddState()
	}
	out.SetStart(nfa.Start())
	for q := range nfa.Finals().All() {
		out.MarkFinal(q)
	}
	nfa.EachTransition(func(from int, s strlang.Symbol, to int) {
		out.AddTransition(from, f(s), to)
	})
	for q := 0; q < nfa.NumStates(); q++ {
		for _, t := range nfa.EpsSucc(q) {
			out.AddEps(q, int(t))
		}
	}
	return out
}

// ExtensionLang returns extT(τn) as a tree automaton-backed EDTD; it is
// Compose with the Theorem 3.2 guarantee spelled out at call sites.
func ExtensionLang(k *axml.Kernel, typing Typing) (*schema.EDTD, error) {
	return Compose(k, typing)
}
