package core

import (
	"strings"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

func TestConsEDTDAllKinds(t *testing.T) {
	k := axml.MustParseKernel("s0(a f1 c f2)")
	typing := DTDTyping(
		schema.MustParseDTD(schema.KindDRE, "root s1\ns1 -> b*"),
		schema.MustParseDTD(schema.KindDRE, "root s2\ns2 -> d*"),
	)
	for _, kind := range schema.AllKinds {
		e, err := ConsEDTD(k, typing, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if e.Kind != kind {
			t.Errorf("%s: result kind %s", kind, e.Kind)
		}
		// Corollary 3.3: the result is always equivalent to T(τn).
		comp, _ := Compose(k, typing)
		if ok, w := schema.EquivalentEDTD(e, comp); !ok {
			t.Errorf("%s: typeT differs from T(τn) on %s", kind, w)
		}
		if err := e.Validate(xmltree.MustParse("s0(a b b c d)")); err != nil {
			t.Errorf("%s: valid extension rejected: %v", kind, err)
		}
	}
}

func TestExtensionLangAlias(t *testing.T) {
	k := axml.MustParseKernel("s0(f1)")
	typing := DTDTyping(schema.MustParseDTD(schema.KindNRE, "root s1\ns1 -> a"))
	e, err := ExtensionLang(k, typing)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(xmltree.MustParse("s0(a)")); err != nil {
		t.Errorf("extension language wrong: %v", err)
	}
}

func TestValidExtension(t *testing.T) {
	k := axml.MustParseKernel("s0(f1 f2)")
	typing := DTDTyping(
		schema.MustParseDTD(schema.KindNRE, "root s1\ns1 -> a"),
		schema.MustParseDTD(schema.KindNRE, "root s2\ns2 -> b*"),
	)
	good := map[string]*xmltree.Tree{
		"f1": xmltree.MustParse("s1(a)"),
		"f2": xmltree.MustParse("s2(b b)"),
	}
	if !ValidExtension(k.Funcs(), typing, good) {
		t.Error("valid extension rejected")
	}
	bad := map[string]*xmltree.Tree{
		"f1": xmltree.MustParse("s1(b)"),
		"f2": xmltree.MustParse("s2"),
	}
	if ValidExtension(k.Funcs(), typing, bad) {
		t.Error("invalid extension accepted")
	}
	if ValidExtension(k.Funcs(), typing, map[string]*xmltree.Tree{"f1": good["f1"]}) {
		t.Error("missing function accepted")
	}
}

func TestWordExistsMaximalLocal(t *testing.T) {
	d := MustWordDesign("(a b)+", "f1 f2")
	typ, ok := d.ExistsMaximalLocal()
	if !ok {
		t.Fatal("∃-ml should hold for Example 5")
	}
	if okV, err := d.MaximalLocal(typ); err != nil || !okV {
		t.Errorf("returned typing fails verification (err=%v)", err)
	}
	d2 := MustWordDesign("a b | b a", "f1 f2")
	if _, ok := d2.ExistsMaximalLocal(); ok {
		t.Error("Example 11 has no maximal local typing")
	}
}

func TestSDTDMaximalLocalEnumeration(t *testing.T) {
	// An SDTD design with a genuine choice at one node: Example 2's shape
	// inside a single-type tree.
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root s
		s -> a1*, b1, c1*
		a1 : a -> ε
		b1 : b -> ε
		c1 : c -> ε
	`)
	kernel := axml.MustParseKernel("s(f1 f2)")
	d := &SDTDDesign{Type: tau, Kernel: kernel}
	ts := d.MaximalLocalWordTypings()
	if len(ts) != 2 {
		t.Fatalf("expected 2 maximal local typings, got %d", len(ts))
	}
	typ, ok := d.ExistsMaximalLocal()
	if !ok {
		t.Fatal("∃-ml should hold")
	}
	okV, err := d.IsMaximalLocal(typ)
	if err != nil || !okV {
		t.Errorf("returned typing fails verification (err=%v)", err)
	}
	// The non-maximal local typing is rejected.
	smaller := d.TypingFromWords(MustWordTyping("a1?", "a1* b1 c1*"))
	okV, err = d.IsMaximalLocal(smaller)
	if err != nil || okV {
		t.Errorf("non-maximal typing accepted (err=%v)", err)
	}
}

func TestPerfectAutomatonString(t *testing.T) {
	d := MustWordDesign("a* b c*", "f1 b f2")
	s := d.Perfect().String()
	if !strings.Contains(s, "Aut(Ω1)") || !strings.Contains(s, "Aut(Ω2)") {
		t.Errorf("String() = %q", s)
	}
}

func TestBoxDesignDirect(t *testing.T) {
	// Section 7 boxes used directly: B = {a,b} f1 {c}, τ = (a|b) d* c.
	kb, err := axml.NewKernelBox(
		[]strlang.Box{{{"a", "b"}}, {{"c"}}},
		[]string{"f1"},
	)
	if err != nil {
		t.Fatal(err)
	}
	target := strlang.RegexNFA(strlang.MustParseRegex("(a|b) d* c"))
	d := NewBoxDesign(target, kb)
	typ, ok := d.PerfectTyping()
	if !ok {
		t.Fatal("box design should have a perfect typing")
	}
	want := strlang.RegexNFA(strlang.MustParseRegex("d*"))
	if ok, w := strlang.Equivalent(typ[0], want); !ok {
		t.Errorf("perfect typing should be d*, differs on %v", w)
	}
	// A box where the set position discriminates: Example 8's κ³
	// situation — {a1,a2} between two functions kills locality.
	kb2, _ := axml.NewKernelBox(
		[]strlang.Box{{}, {{"a1", "a2"}}, {}},
		[]string{"f1", "f2"},
	)
	target2 := strlang.RegexNFA(strlang.MustParseRegex("(a1 a2)+"))
	d2 := NewBoxDesign(target2, kb2)
	if _, ok := d2.LocalTyping(); ok {
		t.Error("mixed-set box design should have no local typing")
	}
	// With the singleton {a1} it works.
	kb3, _ := axml.NewKernelBox(
		[]strlang.Box{{}, {{"a1"}}, {}},
		[]string{"f1", "f2"},
	)
	d3 := NewBoxDesign(target2, kb3)
	if _, ok := d3.LocalTyping(); !ok {
		t.Error("singleton box design should have a local typing")
	}
}

func TestEDTDIsMaximalLocalRejects(t *testing.T) {
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root s0
		s0 -> (a1 a2)+
		a1 : a -> b
		a2 : a -> c
	`)
	kernel := axml.MustParseKernel("s0(f1 a(f2) f3)")
	d := &EDTDDesign{Type: tau, Kernel: kernel}
	// A local-but-not-maximal typing: shrink one component of a maximal
	// one is hard to do while keeping locality, so instead check that a
	// non-local typing is rejected.
	norm, err := d.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	bogus := make(Typing, 3)
	for i := range bogus {
		bogus[i] = edtdTypeFor(norm, i, strlang.EpsLang())
	}
	ok, err := d.IsMaximalLocal(bogus)
	if err != nil || ok {
		t.Errorf("bogus typing accepted (err=%v)", err)
	}
	if ok, err := d.IsLocal(bogus); err != nil || ok {
		t.Errorf("bogus typing judged local (err=%v)", err)
	}
}
