package core

import (
	"testing"

	"dxml/internal/strlang"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// prefix-soundness pruning of the cell-union search, and the Ω ≡ A
// pre-check of ∃-loc. Run with:
//
//	go test ./internal/core/ -bench Ablation -benchmem

// fig5WordDesign is the eurostat-node word design of Figure 5's τ′, at a
// reduced country count so the unpruned arm stays feasible.
func fig5WordDesign() *WordDesign {
	return MustWordDesign("averages (natIndA* | natIndB*)", "f0 f1 f2")
}

func BenchmarkAblation_SearchPruned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := fig5WordDesign()
		if _, ok := d.LocalTyping(); ok {
			b.Fatal("τ′ node should have no local typing")
		}
	}
}

func BenchmarkAblation_SearchUnpruned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := fig5WordDesign()
		d.DisableSearchPruning = true
		if _, ok := d.LocalTyping(); ok {
			b.Fatal("τ′ node should have no local typing")
		}
	}
}

// TestAblationEquivalence locks in that pruning never changes answers.
func TestAblationEquivalence(t *testing.T) {
	designs := []struct {
		target, kernel string
	}{
		{"a* b c*", "f1 f2"},
		{"(a b)+", "f1 f2"},
		{"a b | b a", "f1 f2"},
		{"averages (natIndA* | natIndB*)", "f0 f1 f2"},
		{"a* b c*", "f1 b f2"},
	}
	for _, c := range designs {
		pruned := MustWordDesign(c.target, c.kernel)
		unpruned := MustWordDesign(c.target, c.kernel)
		unpruned.DisableSearchPruning = true
		tp, okP := pruned.LocalTyping()
		tu, okU := unpruned.LocalTyping()
		if okP != okU {
			t.Errorf("%s over %s: pruned=%v unpruned=%v", c.target, c.kernel, okP, okU)
		}
		if okP && okU {
			if !pruned.Local(tu) || !unpruned.Local(tp) {
				t.Errorf("%s over %s: typings disagree", c.target, c.kernel)
			}
		}
		mp := pruned.MaximalLocalTypings()
		mu := unpruned.MaximalLocalTypings()
		if len(mp) != len(mu) {
			t.Errorf("%s over %s: %d vs %d maximal local typings", c.target, c.kernel, len(mp), len(mu))
		}
	}
}

func BenchmarkPerfectAutomatonOnly(b *testing.B) {
	target := strlang.RegexNFA(strlang.MustParseRegex("averages (natIndA* | natIndB*)"))
	for i := 0; i < b.N; i++ {
		d := NewWordDesign(target, fig5WordDesign().KernelString)
		d.Perfect()
	}
}
