package core

import (
	"fmt"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
)

// TestThreeRouteAgreement: a DTD design can be solved by three
// independent routes — the per-node word reduction of Theorem 4.2
// (DTDDesign), the witness reduction of Theorem 4.5 over the trivially
// specialized SDTD (SDTDDesign), and the normalization + κ route of
// Section 4.3 (EDTDDesign). All three must agree on ∃-loc and ∃-perf, and
// their typings must be interchangeable.
func TestThreeRouteAgreement(t *testing.T) {
	cases := []struct {
		dtd    string
		kernel string
	}{
		{"root s\ns -> a* b c*", "s(f1 b f2)"},
		{"root s\ns -> a* b c*", "s(f1 f2)"},
		{"root s\ns -> (a b)+", "s(f1 f2)"},
		{"root s\ns -> b* a\na -> c*", "s(f1 a(f2))"},
		{"root s\ns -> a | b", "s(f1)"},
		{"root s\ns -> a b\na -> c?", "s(a(f1) b)"},
		{"root eurostat\neurostat -> averages, nationalIndex*\naverages -> (Good, index+)+\nnationalIndex -> country, Good, (index | value, year)\nindex -> value, year",
			"eurostat(f0 f1)"},
	}
	for i, c := range cases {
		label := fmt.Sprintf("case %d (%s over %s)", i, c.dtd, c.kernel)
		dtd := schema.MustParseDTD(schema.KindNRE, c.dtd)
		kernel := axml.MustParseKernel(c.kernel)

		dDTD := &DTDDesign{Type: dtd, Kernel: kernel}
		dSDTD := &SDTDDesign{Type: dtd.ToEDTD(), Kernel: kernel}
		dEDTD := &EDTDDesign{Type: dtd.ToEDTD(), Kernel: kernel}

		locD, okD := dDTD.ExistsLocal()
		locS, okS := dSDTD.ExistsLocal()
		locE, okE, errE := dEDTD.ExistsLocal()
		if errE != nil {
			t.Fatalf("%s: EDTD route error: %v", label, errE)
		}
		if okD != okS || okD != okE {
			t.Fatalf("%s: ∃-loc disagrees: DTD=%v SDTD=%v EDTD=%v", label, okD, okS, okE)
		}
		if okD {
			// Each route's typing must verify as local on the DTD design.
			for name, typ := range map[string]Typing{"DTD": locD, "SDTD": locS, "EDTD": locE} {
				ok, err := dEDTD.IsLocal(typ)
				if err != nil {
					t.Fatalf("%s: verifying %s typing: %v", label, name, err)
				}
				if !ok {
					t.Fatalf("%s: %s route's typing is not local", label, name)
				}
			}
		}

		perfD, okD2 := dDTD.ExistsPerfect()
		perfS, okS2 := dSDTD.ExistsPerfect()
		perfE, okE2, errE := dEDTD.ExistsPerfect()
		if errE != nil {
			t.Fatalf("%s: EDTD perfect route error: %v", label, errE)
		}
		if okD2 != okS2 || okD2 != okE2 {
			t.Fatalf("%s: ∃-perf disagrees: DTD=%v SDTD=%v EDTD=%v", label, okD2, okS2, okE2)
		}
		if okD2 {
			// Perfect typings are unique up to equivalence: compare the
			// extension languages componentwise via composition.
			compD, _ := Compose(kernel, perfD)
			compS, _ := Compose(kernel, perfS)
			compE, _ := Compose(kernel, perfE)
			if ok, w := schema.EquivalentEDTD(compD, compS); !ok {
				t.Fatalf("%s: DTD vs SDTD perfect extensions differ on %s", label, w)
			}
			if ok, w := schema.EquivalentEDTD(compD, compE); !ok {
				t.Fatalf("%s: DTD vs EDTD perfect extensions differ on %s", label, w)
			}
			if !EquivTyping(perfD, perfS) {
				t.Fatalf("%s: DTD vs SDTD perfect typings differ componentwise", label)
			}
		}
	}
}

// TestEDTDDeepSpecializations: a single-type EDTD with specializations at
// two depths, solved by both the SDTD and the EDTD routes.
func TestEDTDDeepSpecializations(t *testing.T) {
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root s
		s -> a1, b1
		a1 : a -> x1*
		b1 : b -> a2
		a2 : a -> x2?
		x1 : x -> ε
		x2 : x -> y
	`)
	kernel := axml.MustParseKernel("s(a(f1) b(a(f2)))")
	dS := &SDTDDesign{Type: tau, Kernel: kernel}
	dE := &EDTDDesign{Type: tau, Kernel: kernel}
	perfS, okS := dS.ExistsPerfect()
	perfE, okE, err := dE.ExistsPerfect()
	if err != nil {
		t.Fatal(err)
	}
	if !okS || !okE {
		t.Fatalf("both routes should find the perfect typing: SDTD=%v EDTD=%v", okS, okE)
	}
	compS, _ := Compose(kernel, perfS)
	compE, _ := Compose(kernel, perfE)
	if ok, w := schema.EquivalentEDTD(compS, compE); !ok {
		t.Fatalf("routes disagree on the extension language: %s", w)
	}
	// f1 gets x1* (x leaves), f2 gets x2? (x with one y child).
	if !EquivTyping(perfS, perfE) {
		t.Fatal("perfect typings differ componentwise between routes")
	}
}
