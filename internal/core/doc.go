// Package core implements the paper's primary contribution: the theory of
// distributed XML design of Abiteboul, Gottlob and Manna (PODS 2009).
//
// Bottom-up design (Section 3): composing a kernel document with a typing
// into the global type T(τn), deciding cons[S] for S ∈ {R-DTD, R-SDTD,
// R-EDTD}, and constructing typeT(τn) per content-model formalism R with
// the worst-case sizes of Table 2.
//
// Top-down design (Sections 4–7): the typing notions sound / maximal /
// complete / local / perfect (Definition 12), the verification problems
// loc/ml/perf[S] and the existence problems ∃-loc/∃-ml/∃-perf[S], solved
// for words via the perfect automaton Ω(A, w) of Section 6 (Algorithm 1)
// and the Dec(Ωi) cell decomposition of Section 6.1, for kernel boxes
// (Section 7), and for trees via the reductions of Section 4 (per-node
// string designs for DTDs/SDTDs; normalization and κ-functions for EDTDs).
package core
