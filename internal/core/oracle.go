package core

import (
	"fmt"
	"sort"
	"strings"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
)

// This file provides independent candidate-and-verify deciders for
// cons[SDTD] and cons[DTD], used as differential-testing oracles for the
// merge algorithm of cons.go. They build the only possible reduced
// candidate of the target class and check tree-language equivalence with
// T(τn):
//
//   - for SDTDs, the candidate's specialized names are the reachable
//     witness sets of the determinized dual (ancestor-string contexts,
//     Lemma 3.5);
//   - for DTDs, the candidate's content model for element a is the union
//     over all useful specializations ã of µ(π(ã)) (closure under subtree
//     substitution, Lemma 3.12).

// ConsSDTDCandidate decides cons[nFA-SDTD] by candidate construction and
// EDTD equivalence. It returns the candidate when consistent.
func ConsSDTDCandidate(k *axml.Kernel, typing Typing) (ConsResult, error) {
	comp, err := Compose(k, typing)
	if err != nil {
		return ConsResult{}, err
	}
	red, err := comp.Reduce()
	if err != nil {
		return ConsResult{}, fmt.Errorf("core: T(τn) is empty: %w", err)
	}
	// Determinize the dual: subset states over specialized names.
	type subset struct {
		key   string
		names []string
		elem  string
	}
	intern := map[string]*subset{}
	mk := func(names []string) *subset {
		sort.Strings(names)
		key := strings.Join(names, "+")
		if s, ok := intern[key]; ok {
			return s
		}
		s := &subset{key: key, names: names, elem: red.Elem(names[0])}
		intern[key] = s
		return s
	}
	// successor subset of s on element e.
	succ := func(s *subset, e string) *subset {
		var next []string
		seen := map[string]bool{}
		for _, n := range s.names {
			for _, c := range red.Rule(n).UsefulSymbols() {
				if red.Elem(c) == e && !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		return mk(next)
	}
	// Roots: group starts by element name; an SDTD has a single start, so
	// multiple root elements make the language non-single-type… unless a
	// single subset covers them (same element).
	rootByElem := map[string][]string{}
	for _, s := range red.Starts {
		rootByElem[red.Elem(s)] = append(rootByElem[red.Elem(s)], s)
	}
	if len(rootByElem) != 1 {
		return ConsResult{Consistent: false, Reason: "roots with several element names"}, nil
	}
	var rootSubset *subset
	for _, names := range rootByElem {
		rootSubset = mk(names)
	}
	// BFS over subsets.
	queue := []*subset{rootSubset}
	visited := map[string]bool{rootSubset.key: true}
	nameOf := func(s *subset) string { return "{" + s.key + "}" }
	cand := schema.NewEDTD(schema.KindNFA, nameOf(rootSubset), rootSubset.elem)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		cand.DeclareName(nameOf(s), s.elem)
		// Content: union of the members' contents, symbols rewritten to
		// successor subsets. Trimming first guarantees every remaining
		// transition symbol is useful, so its successor subset exists.
		var parts []*strlang.NFA
		for _, n := range s.names {
			trimmed, _ := red.Rule(n).Lang().Trim()
			parts = append(parts, relabel(trimmed, func(c string) string {
				return nameOf(succ(s, red.Elem(c)))
			}))
		}
		cand.MustSetRule(nameOf(s), schema.NewContentNFA(strlang.UnionAll(parts...)))
		// Enqueue successors.
		elems := map[string]bool{}
		for _, n := range s.names {
			for _, c := range red.Rule(n).UsefulSymbols() {
				elems[red.Elem(c)] = true
			}
		}
		var sortedElems []string
		for e := range elems {
			sortedElems = append(sortedElems, e)
		}
		sort.Strings(sortedElems)
		for _, e := range sortedElems {
			n := succ(s, e)
			if n != nil && !visited[n.key] {
				visited[n.key] = true
				queue = append(queue, n)
			}
		}
	}
	if ok, _ := cand.IsSingleType(); !ok {
		return ConsResult{}, fmt.Errorf("core: internal error: candidate is not single-type")
	}
	if ok, w := schema.EquivalentEDTD(red, cand); !ok {
		return ConsResult{Consistent: false,
			Reason: fmt.Sprintf("single-type candidate differs on tree %s", w)}, nil
	}
	return ConsResult{Consistent: true, EDTD: cand}, nil
}

// ConsDTDCandidate decides cons[nFA-DTD] by candidate construction and
// EDTD equivalence.
func ConsDTDCandidate(k *axml.Kernel, typing Typing) (ConsResult, error) {
	comp, err := Compose(k, typing)
	if err != nil {
		return ConsResult{}, err
	}
	red, err := comp.Reduce()
	if err != nil {
		return ConsResult{}, fmt.Errorf("core: T(τn) is empty: %w", err)
	}
	rootElems := map[string]bool{}
	for _, s := range red.Starts {
		rootElems[red.Elem(s)] = true
	}
	if len(rootElems) != 1 {
		return ConsResult{Consistent: false, Reason: "roots with several element names"}, nil
	}
	cand := schema.NewDTD(schema.KindNFA, red.Elem(red.Starts[0]))
	for _, el := range red.ElementNames() {
		var parts []*strlang.NFA
		for _, n := range red.Specializations(el) {
			parts = append(parts, red.ProjectedRule(n))
		}
		union := strlang.UnionAll(parts...)
		if union.AcceptsEps() && len(union.UsefulSymbols()) == 0 {
			continue
		}
		cand.Rules[el] = schema.NewContentNFA(union)
	}
	if ok, w := schema.EquivalentEDTD(red, cand.ToEDTD()); !ok {
		return ConsResult{Consistent: false,
			Reason: fmt.Sprintf("DTD candidate differs on tree %s", w)}, nil
	}
	return ConsResult{Consistent: true, DTD: cand, EDTD: cand.ToEDTD()}, nil
}
