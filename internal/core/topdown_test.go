package core

import (
	"strings"
	"testing"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
)

// eurostatDTD is the paper's Figure 3 global type τ.
func eurostatDTD(t testing.TB) *schema.DTD {
	t.Helper()
	d, err := schema.ParseW3CDTD(schema.KindNRE, `
		<!ELEMENT eurostat (averages, nationalIndex*)>
		<!ELEMENT averages (Good, index+)+>
		<!ELEMENT nationalIndex (country, Good, (index | value, year))>
		<!ELEMENT index (value, year)>
		<!ELEMENT country (#PCDATA)>
		<!ELEMENT Good (#PCDATA)>
		<!ELEMENT value (#PCDATA)>
		<!ELEMENT year (#PCDATA)>
	`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// eurostatKernel is T0 per DESIGN.md erratum E1: a docking point f0 for
// the EU-averages provider plus one per country.
func eurostatKernel() *axml.Kernel {
	return axml.MustParseKernel("eurostat(f0 f1 f2 f3)")
}

func TestEurostatPerfectTyping(t *testing.T) {
	// Figure 4: the design ⟨τ, T0⟩ has a perfect typing with
	// rootᵢ → nationalIndex* for the country functions.
	d := &DTDDesign{Type: eurostatDTD(t), Kernel: eurostatKernel()}
	typing, ok := d.ExistsPerfect()
	if !ok {
		t.Fatal("⟨τ, T0⟩ should admit a perfect typing (Figure 4)")
	}
	wantCountry := strlang.RegexNFA(strlang.MustParseRegex("nationalIndex*"))
	for i := 1; i <= 3; i++ {
		got := RootContent(typing[i])
		if ok, w := strlang.Equivalent(got, wantCountry); !ok {
			t.Errorf("country typing %d should be nationalIndex*, differs on %v (got %s)",
				i, w, strlang.RegexString(strlang.RegexFromNFA(got)))
		}
	}
	want0 := strlang.RegexNFA(strlang.MustParseRegex("averages nationalIndex*"))
	if ok, w := strlang.Equivalent(RootContent(typing[0]), want0); !ok {
		t.Errorf("f0's typing should be averages nationalIndex*, differs on %v", w)
	}
	// Verify the typing is indeed perfect and local through the
	// verification problems.
	if ok, err := d.IsPerfect(typing); err != nil || !ok {
		t.Errorf("IsPerfect rejects the computed perfect typing (err=%v)", err)
	}
	if ok, err := d.IsLocal(typing); err != nil || !ok {
		t.Errorf("IsLocal rejects the perfect typing (err=%v)", err)
	}
	if ok, err := d.IsMaximalLocal(typing); err != nil || !ok {
		t.Errorf("a perfect typing is maximal local (err=%v)", err)
	}
}

func TestEurostatBadDesign(t *testing.T) {
	// Figure 5: τ′ forces all countries onto one format; ⟨τ′, T0⟩ admits
	// no local typing.
	tauPrime := schema.MustParseDTD(schema.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA* | natIndB*)
		averages -> (Good, index+)+
		natIndA -> country, Good, index
		natIndB -> country, Good, value, year
		index -> value, year
	`)
	d := &DTDDesign{Type: tauPrime, Kernel: eurostatKernel()}
	if _, ok := d.ExistsLocal(); ok {
		t.Fatal("⟨τ′, T0⟩ should not admit a local typing")
	}
	if _, ok := d.ExistsPerfect(); ok {
		t.Error("⟨τ′, T0⟩ should not admit a perfect typing")
	}
	if _, ok := d.ExistsMaximalLocal(); ok {
		t.Error("⟨τ′, T0⟩ should not admit a maximal local typing")
	}
	// A sound (but incomplete) typing of course exists, e.g. all-A.
	soundTyping := DTDTyping(
		schema.MustParseDTD(schema.KindNRE, "root root1\nroot1 -> averages\naverages -> (Good, index+)+\nindex -> value, year"),
		schema.MustParseDTD(schema.KindNRE, "root root2\nroot2 -> natIndA*\nnatIndA -> country, Good, index\nindex -> value, year"),
		schema.MustParseDTD(schema.KindNRE, "root root3\nroot3 -> natIndA*\nnatIndA -> country, Good, index\nindex -> value, year"),
		schema.MustParseDTD(schema.KindNRE, "root root4\nroot4 -> natIndA*\nnatIndA -> country, Good, index\nindex -> value, year"),
	)
	comp, err := Compose(d.Kernel, soundTyping)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := schema.IncludedEDTD(comp, tauPrime.ToEDTD()); !ok {
		t.Errorf("all-A typing should be sound, witness %s", w)
	}
}

func TestEurostatLiteralReadingDiffers(t *testing.T) {
	// Under the literal Definition 12 (trivial {ε}-types allowed), even
	// τ′ has a “local” typing where one docking point grabs everything —
	// this is erratum E4's rationale for the default convention.
	tauPrime := schema.MustParseDTD(schema.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA* | natIndB*)
		averages -> (Good, index+)+
		natIndA -> country, Good, index
		natIndB -> country, Good, value, year
		index -> value, year
	`)
	d := &DTDDesign{Type: tauPrime, Kernel: eurostatKernel(), AllowTrivialTypes: true}
	if _, ok := d.ExistsLocal(); !ok {
		t.Error("the literal reading admits a degenerate local typing")
	}
}

func TestTauPrimePrimeTwoMaximalTypings(t *testing.T) {
	// Figure 6's τ″ over kernel T1 = eurostat(f1, nationalIndex(f2), f3):
	// no perfect typing; exactly two maximal local typings (Section 1,
	// with erratum E2's corrected τ″3.1).
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA, natIndB)+
		averages -> (Good, index+)+
		natIndA : nationalIndex -> country, Good, index
		natIndB : nationalIndex -> country, Good, value, year
		index -> value, year
	`)
	kernel := axml.MustParseKernel("eurostat(f1 nationalIndex(f2) f3)")
	d := &EDTDDesign{Type: tau, Kernel: kernel}

	if _, ok, err := d.ExistsPerfect(); err != nil || ok {
		t.Fatalf("⟨τ″, T1⟩ should have no perfect typing (err=%v)", err)
	}
	typings, err := d.MaximalLocalTypings()
	if err != nil {
		t.Fatal(err)
	}
	if len(typings) != 2 {
		t.Fatalf("⟨τ″, T1⟩ has exactly two maximal local typings, got %d", len(typings))
	}

	// Project root contents to element names for comparison with the
	// paper's types (our normalized names differ syntactically).
	projected := func(typing Typing, i int) *strlang.NFA {
		return relabel(RootContent(typing[i]), typing[i].Elem)
	}
	langs := func(srcs ...string) []*strlang.NFA {
		out := make([]*strlang.NFA, len(srcs))
		for i, s := range srcs {
			out[i] = strlang.RegexNFA(strlang.MustParseRegex(s))
		}
		return out
	}
	// Typing 1 (κ = natIndA): paper's τ″1.1, τ″2.1, and E2-corrected
	// τ″3.1 = natIndB, (natIndA natIndB)* — projected to element names:
	// nationalIndex everywhere.
	want1 := langs(
		"averages (nationalIndex nationalIndex)*",
		"country Good index",
		"nationalIndex (nationalIndex nationalIndex)*")
	// Typing 2 (κ = natIndB): τ″1.2, τ″2.2, τ″3.2.
	want2 := langs(
		"averages (nationalIndex nationalIndex)* nationalIndex",
		"country Good value year",
		"(nationalIndex nationalIndex)*")
	match := func(typing Typing, want []*strlang.NFA) bool {
		for i := range want {
			if ok, _ := strlang.Equivalent(projected(typing, i), want[i]); !ok {
				return false
			}
		}
		return true
	}
	found1, found2 := false, false
	for _, typing := range typings {
		if match(typing, want1) {
			found1 = true
		}
		if match(typing, want2) {
			found2 = true
		}
	}
	if !found1 {
		t.Error("paper's first maximal local typing (κ=natIndA) not found")
	}
	if !found2 {
		t.Error("paper's second maximal local typing (κ=natIndB) not found")
	}
	// Each enumerated typing must verify as maximal local.
	for i, typing := range typings {
		if ok, err := d.IsMaximalLocal(typing); err != nil || !ok {
			t.Errorf("typing %d fails its own verification (err=%v)", i, err)
		}
		if ok, err := d.IsPerfect(typing); err != nil || ok {
			t.Errorf("typing %d should not be perfect (err=%v)", i, err)
		}
	}
}

func TestExample7(t *testing.T) {
	// Example 7: T = s0(f1 f2); specializations b̃¹, b̃² overlap on b(g).
	// At the string level only two maximal local typings exist (one with a
	// trivial component); at the tree level the second becomes
	// (a1(b1)*+a2(b2)*, (b̃³)*) with [τ2(b̃³)] = b(g). The example uses a
	// trivial {ε} component, so the literal reading is enabled.
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root s0
		s0 -> a1 b1* | a2 b2*
		a1 : a -> c
		a2 : a -> d
		b1 : b -> e | g
		b2 : b -> g | h
	`)
	kernel := axml.MustParseKernel("s0(f1 f2)")
	d := &EDTDDesign{Type: tau, Kernel: kernel, AllowTrivialTypes: true}
	typings, err := d.MaximalLocalTypings()
	if err != nil {
		t.Fatal(err)
	}
	if len(typings) != 2 {
		t.Fatalf("Example 7 has two maximal local tree typings, got %d", len(typings))
	}
	// One of them must type f2 with the forests (b(g))*: its root content
	// projects to b* and every b-tree in it carries exactly a g child.
	foundStar := false
	for _, typing := range typings {
		tau2 := typing[1]
		proj := relabel(RootContent(tau2), tau2.Elem)
		if ok, _ := strlang.Equivalent(proj, strlang.RegexNFA(strlang.MustParseRegex("b*"))); !ok {
			continue
		}
		foundStar = true
		// Check the b-trees allowed under τ2 are exactly b(g): compose a
		// singleton kernel using τ2 and validate.
		if typing[0] == nil {
			t.Fatal("nil typing component")
		}
	}
	if !foundStar {
		t.Error("the tree-level typing ((…), (b̃³)*) of Example 7 not found")
	}
	// And the (ε, full) typing must also be there: some typing's first
	// component is {ε} (the empty forest).
	foundEps := false
	for _, typing := range typings {
		if ok, _ := strlang.Equivalent(RootContent(typing[0]), strlang.EpsLang()); ok {
			foundEps = true
		}
	}
	if !foundEps {
		t.Error("the (ε, a1(b1)*+a2(b2)*) typing of Example 7 not found")
	}
}

func TestExample8(t *testing.T) {
	// Example 8: normalized dRE-EDTD design with two successful κ's and
	// two substantially different maximal local typings; κ³ = {ã¹,ã²}
	// yields none.
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root s0
		s0 -> (a1 a2)+
		a1 : a -> b
		a2 : a -> c
	`)
	kernel := axml.MustParseKernel("s0(f1 a(f2) f3)")
	d := &EDTDDesign{Type: tau, Kernel: kernel}
	typings, err := d.MaximalLocalTypings()
	if err != nil {
		t.Fatal(err)
	}
	if len(typings) != 2 {
		t.Fatalf("Example 8 has exactly two maximal local typings, got %d", len(typings))
	}
	if _, ok, err := d.ExistsPerfect(); err != nil || ok {
		t.Errorf("Example 8 should have no perfect typing (err=%v)", err)
	}
	// The two typings type f2 with b and with c respectively.
	var f2Langs []string
	for _, typing := range typings {
		proj := relabel(RootContent(typing[1]), typing[1].Elem)
		f2Langs = append(f2Langs, strlang.RegexString(strlang.RegexFromNFA(proj)))
	}
	joined := strings.Join(f2Langs, " / ")
	if !(strings.Contains(joined, "b") && strings.Contains(joined, "c")) {
		t.Errorf("f2 should be typed b in one typing and c in the other, got %s", joined)
	}
	// ∃-loc and ∃-ml hold.
	if _, ok, err := d.ExistsLocal(); err != nil || !ok {
		t.Errorf("∃-loc should hold (err=%v)", err)
	}
	if _, ok, err := d.ExistsMaximalLocal(); err != nil || !ok {
		t.Errorf("∃-ml should hold (err=%v)", err)
	}
}

func TestTheorem48Reduction(t *testing.T) {
	// The reduction of Theorem 4.8: D admits a local typing iff τ′ ≡ τ″.
	build := func(tauP, tauPP string) *EDTDDesign {
		tau := schema.MustParseEDTD(schema.KindNRE, `
			root s0
			s0 -> a1 c1 d1 | b1 c1 d2
			a1 : a -> ε
			b1 : b -> ε
			c1 : c -> ε
			d1 : d -> `+tauP+`
			d2 : d -> `+tauPP+`
		`)
		return &EDTDDesign{
			Type:   tau,
			Kernel: axml.MustParseKernel("s0(f1 c f2)"),
		}
	}
	// Equivalent inner types: local typing exists.
	d := build("x y*", "x y*")
	if _, ok, err := d.ExistsLocal(); err != nil || !ok {
		t.Errorf("equivalent inner types should give a local typing (err=%v)", err)
	}
	if _, ok, err := d.ExistsPerfect(); err != nil || !ok {
		t.Errorf("…and a perfect one (err=%v)", err)
	}
	// Inequivalent: no local typing.
	d = build("x y*", "x y+")
	if _, ok, err := d.ExistsLocal(); err != nil || ok {
		t.Errorf("inequivalent inner types should give no local typing (err=%v)", err)
	}
}

func TestSDTDTopDown(t *testing.T) {
	// A single-type design where the same element a has different
	// contents in different contexts.
	tau := schema.MustParseEDTD(schema.KindNRE, `
		root s
		s -> a1, b1
		a1 : a -> x*
		b1 : b -> a2
		a2 : a -> y?
	`)
	kernel := axml.MustParseKernel("s(a(f1) b(a(f2)))")
	d := &SDTDDesign{Type: tau, Kernel: kernel}
	typing, ok := d.ExistsPerfect()
	if !ok {
		t.Fatal("SDTD design should have a perfect typing")
	}
	if ok, w := strlang.Equivalent(RootContent(typing[0]), strlang.RegexNFA(strlang.MustParseRegex("x*"))); !ok {
		t.Errorf("f1 should be typed x*, differs on %v", w)
	}
	if ok, w := strlang.Equivalent(RootContent(typing[1]), strlang.RegexNFA(strlang.MustParseRegex("y?"))); !ok {
		t.Errorf("f2 should be typed y?, differs on %v", w)
	}
	if ok, err := d.IsPerfect(typing); err != nil || !ok {
		t.Errorf("verification rejects the perfect typing (err=%v)", err)
	}
	if ok, err := d.IsLocal(typing); err != nil || !ok {
		t.Errorf("verification rejects locality (err=%v)", err)
	}
	// A kernel that does not fit the vertical language has no typing.
	badKernel := axml.MustParseKernel("s(b(f1) a)")
	bad := &SDTDDesign{Type: tau, Kernel: badKernel}
	if _, ok := bad.ExistsLocal(); ok {
		t.Error("mismatched kernel should have no local typing")
	}
}

func TestDTDVerificationProblems(t *testing.T) {
	// Example 3 lifted to trees: τ = s → a*bc*, T = s(f1 b f2).
	tau := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a* b c*")
	kernel := axml.MustParseKernel("s(f1 b f2)")
	d := &DTDDesign{Type: tau, Kernel: kernel}
	perfect := d.TypingFromWords(MustWordTyping("a*", "c*"))
	if ok, err := d.IsPerfect(perfect); err != nil || !ok {
		t.Errorf("(a*, c*) should be perfect (err=%v)", err)
	}
	smaller := d.TypingFromWords(MustWordTyping("a?", "c*"))
	if ok, err := d.IsLocal(smaller); err != nil || ok {
		t.Errorf("(a?, c*) is not local — incomplete (err=%v)", err)
	}
	// Example 2 lifted: two maximal local typings, neither perfect.
	tau2 := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a* b c*")
	kernel2 := axml.MustParseKernel("s(f1 f2)")
	d2 := &DTDDesign{Type: tau2, Kernel: kernel2}
	ml := d2.MaximalLocalWordTypings()
	if len(ml) != 2 {
		t.Fatalf("expected 2 maximal local typings, got %d", len(ml))
	}
	if _, ok := d2.ExistsPerfect(); ok {
		t.Error("no perfect typing should exist")
	}
	t1 := d2.TypingFromWords(MustWordTyping("a* b c*", "c*"))
	if ok, err := d2.IsMaximalLocal(t1); err != nil || !ok {
		t.Errorf("(a*bc*, c*) should be maximal local (err=%v)", err)
	}
	if ok, err := d2.IsPerfect(t1); err != nil || ok {
		t.Errorf("(a*bc*, c*) should not be perfect (err=%v)", err)
	}
	t3 := d2.TypingFromWords(MustWordTyping("a?", "a* b c*"))
	if ok, err := d2.IsMaximalLocal(t3); err != nil || ok {
		t.Errorf("(a?, a*bc*) should not be maximal (err=%v)", err)
	}
	if ok, err := d2.IsLocal(t3); err != nil || !ok {
		t.Errorf("(a?, a*bc*) should be local (err=%v)", err)
	}
}

func TestDTDMultiNodeFunctions(t *testing.T) {
	// Functions at two different depths: s(f1 a(f2)) with τ: s → b* a,
	// a → c*. Per-node designs: ⟨b* a, f1 a⟩ and ⟨c*, f2⟩.
	tau := schema.MustParseDTD(schema.KindNRE, "root s\ns -> b* a\na -> c*")
	kernel := axml.MustParseKernel("s(f1 a(f2))")
	d := &DTDDesign{Type: tau, Kernel: kernel}
	typing, ok := d.ExistsPerfect()
	if !ok {
		t.Fatal("perfect typing should exist")
	}
	if ok, w := strlang.Equivalent(RootContent(typing[0]), strlang.RegexNFA(strlang.MustParseRegex("b*"))); !ok {
		t.Errorf("f1 should be typed b*, differs on %v", w)
	}
	if ok, w := strlang.Equivalent(RootContent(typing[1]), strlang.RegexNFA(strlang.MustParseRegex("c*"))); !ok {
		t.Errorf("f2 should be typed c*, differs on %v", w)
	}
	if ok, err := d.IsPerfect(typing); err != nil || !ok {
		t.Errorf("verification rejects the perfect typing (err=%v)", err)
	}
}

func TestDTDFunctionUnderEmptyContent(t *testing.T) {
	// A docking point under a node whose content must be empty: the only
	// candidate typing is the trivial {ε}, excluded by the paper's
	// convention (DESIGN.md E4) — so no local typing by default, but one
	// under the literal reading.
	tau := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a") // a is a leaf
	kernel := axml.MustParseKernel("s(a(f1))")
	d := &DTDDesign{Type: tau, Kernel: kernel}
	if _, ok := d.ExistsLocal(); ok {
		t.Error("empty-content docking point should have no admissible local typing")
	}
	literal := &DTDDesign{Type: tau, Kernel: kernel, AllowTrivialTypes: true}
	typing, ok := literal.ExistsLocal()
	if !ok {
		t.Fatal("the literal reading should admit the {ε} typing")
	}
	if okEq, _ := strlang.Equivalent(RootContent(typing[0]), strlang.EpsLang()); !okEq {
		t.Error("the typing should be {ε}")
	}
}

func TestDTDKernelLabelUnknownToType(t *testing.T) {
	// A kernel using an element name the type never mentions: no typing
	// can make the design local (the type's language has no such nodes).
	tau := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a*")
	kernel := axml.MustParseKernel("s(zz(f1))")
	d := &DTDDesign{Type: tau, Kernel: kernel}
	if _, ok := d.ExistsLocal(); ok {
		t.Error("kernel outside the type's vertical language must not be local")
	}
}

func TestDTDFunctionFreeNodeConstraints(t *testing.T) {
	// Theorem 4.2: a function-free node needs a singleton content model
	// for locality.
	tau := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a b?\na -> c*")
	kernel := axml.MustParseKernel("s(a(f1) b)")
	d := &DTDDesign{Type: tau, Kernel: kernel}
	// π(s) = a b? is not the singleton {a b}: no local typing.
	if _, ok := d.ExistsLocal(); ok {
		t.Fatal("non-singleton function-free content must block locality")
	}
	tau2 := schema.MustParseDTD(schema.KindNRE, "root s\ns -> a b\na -> c*")
	d2 := &DTDDesign{Type: tau2, Kernel: kernel}
	typing, ok := d2.ExistsPerfect()
	if !ok {
		t.Fatal("singleton contents should allow the perfect typing c*")
	}
	if ok, w := strlang.Equivalent(RootContent(typing[0]), strlang.RegexNFA(strlang.MustParseRegex("c*"))); !ok {
		t.Errorf("f1 should be typed c*, differs on %v", w)
	}
}
