package core

import (
	"fmt"

	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// Typing is a positional mapping from the functions f1…fn of a kernel to
// types τ1…τn (Section 2.3). Each type is an EDTD with a single start name
// whose element name is the “extra” root label sᵢ labelling every tree of
// [τᵢ]; the root name must not occur in any content model.
type Typing []*schema.EDTD

// CheckTyping validates the structural requirements on a typing for a
// kernel with n functions.
func CheckTyping(n int, typing Typing) error {
	if len(typing) != n {
		return fmt.Errorf("core: typing has %d types for %d functions", len(typing), n)
	}
	for i, tau := range typing {
		if tau == nil {
			return fmt.Errorf("core: type %d is nil", i+1)
		}
		if len(tau.Starts) != 1 {
			return fmt.Errorf("core: type %d has %d start names, want 1", i+1, len(tau.Starts))
		}
		start := tau.Starts[0]
		for _, name := range tau.SpecializedNames() {
			for _, sym := range tau.Rule(name).UsefulSymbols() {
				if sym == start {
					return fmt.Errorf("core: type %d: root name %s occurs in the content model of %s",
						i+1, start, name)
				}
			}
		}
	}
	return nil
}

// DTDTyping lifts DTDs (with fresh roots) into a Typing, following the
// R-SDTD view of Section 3.3.
func DTDTyping(dtds ...*schema.DTD) Typing {
	out := make(Typing, len(dtds))
	for i, d := range dtds {
		out[i] = d.ToEDTD()
	}
	return out
}

// ValidExtension reports whether each tree of ext is valid for the
// corresponding type (tᵢ ⊨ τᵢ), keyed by function symbol.
func ValidExtension(funcs []string, typing Typing, ext map[string]*xmltree.Tree) bool {
	for i, f := range funcs {
		t, ok := ext[f]
		if !ok || typing[i].Validate(t) != nil {
			return false
		}
	}
	return true
}

// RootContent returns the content model language of τᵢ's start name: the
// forests that fᵢ may contribute, as a word language over τᵢ's specialized
// names.
func RootContent(tau *schema.EDTD) *strlang.NFA {
	return tau.Rule(tau.Starts[0]).Lang()
}

// WordTyping is a typing for a kernel string: one string language per
// function.
type WordTyping []*strlang.NFA

// WordTypingFromRegexes parses each source as a regex and returns the
// typing.
func WordTypingFromRegexes(sources ...string) (WordTyping, error) {
	out := make(WordTyping, len(sources))
	for i, src := range sources {
		re, err := strlang.ParseRegex(src)
		if err != nil {
			return nil, fmt.Errorf("core: type %d: %w", i+1, err)
		}
		out[i] = strlang.RegexNFA(re)
	}
	return out, nil
}

// MustWordTyping is WordTypingFromRegexes panicking on error.
func MustWordTyping(sources ...string) WordTyping {
	wt, err := WordTypingFromRegexes(sources...)
	if err != nil {
		panic(err)
	}
	return wt
}

// LeqWord reports whether (τn) ≤ (τ′n) componentwise ([τᵢ] ⊆ [τ′ᵢ]).
func LeqWord(a, b WordTyping) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if ok, _ := strlang.Included(a[i], b[i]); !ok {
			return false
		}
	}
	return true
}

// LtWord reports whether (τn) < (τ′n): ≤ and strictly smaller somewhere.
func LtWord(a, b WordTyping) bool {
	if !LeqWord(a, b) {
		return false
	}
	for i := range a {
		if ok, _ := strlang.Included(b[i], a[i]); !ok {
			return true
		}
	}
	return false
}

// EquivWord reports whether (τn) ≡ (τ′n) componentwise.
func EquivWord(a, b WordTyping) bool { return LeqWord(a, b) && LeqWord(b, a) }

// LeqTyping reports componentwise tree-language inclusion of typings.
func LeqTyping(a, b Typing) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if ok, _ := schema.IncludedEDTD(a[i], b[i]); !ok {
			return false
		}
	}
	return true
}

// EquivTyping reports componentwise tree-language equivalence.
func EquivTyping(a, b Typing) bool { return LeqTyping(a, b) && LeqTyping(b, a) }
