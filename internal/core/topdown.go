package core

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/schema"
	"dxml/internal/strlang"
	"dxml/internal/xmltree"
)

// This file implements the top-down design problems for R-DTDs and
// R-SDTDs (Sections 4.1 and 4.2): by Theorems 4.2 and 4.5 the tree
// problems reduce to one string design per element node of the kernel —
// ⟨π(lab(x)), child-str(x)⟩ for DTDs, and ⟨π(ã), w^x⟩ over witnesses for
// SDTDs.

// NodeDesign is the string design induced at one kernel element node.
type NodeDesign struct {
	// Path locates the node (labels from the root, inclusive).
	Path []string
	// Witness is the specialized name assigned to the node (for DTDs the
	// element name itself).
	Witness string
	// Design is the word design ⟨content model, kernel child string⟩.
	Design *WordDesign
	// FuncIdx maps the design's functions to global function indices
	// (0-based positions in Kernel.Funcs()).
	FuncIdx []int
}

// DTDDesign is a top-down R-DTD design ⟨τ, T⟩ (Definition 10).
type DTDDesign struct {
	Type   *schema.DTD
	Kernel *axml.Kernel
	// AllowTrivialTypes is propagated to the induced word designs (see
	// BoxDesign.AllowTrivialTypes).
	AllowTrivialTypes bool
}

// SDTDDesign is a top-down R-SDTD design ⟨τ, T⟩. Type must be single-type.
type SDTDDesign struct {
	Type              *schema.EDTD
	Kernel            *axml.Kernel
	AllowTrivialTypes bool
}

// NodeDesigns returns the string designs of Theorem 4.2, one per element
// node of the kernel, in document order.
func (d *DTDDesign) NodeDesigns() []*NodeDesign {
	var out []*NodeDesign
	funcIdx := map[string]int{}
	for i, f := range d.Kernel.Funcs() {
		funcIdx[f] = i
	}
	d.Kernel.Tree().Walk(func(n *xmltree.Tree, anc []string) bool {
		if d.Kernel.IsFunc(n.Label) {
			return true
		}
		ks, idx := childKernelString(d.Kernel, n, func(c *xmltree.Tree) string { return c.Label }, funcIdx)
		wd := NewWordDesign(d.Type.Rule(n.Label).Lang(), ks)
		wd.AllowTrivialTypes = d.AllowTrivialTypes
		out = append(out, &NodeDesign{
			Path:    append([]string(nil), anc...),
			Witness: n.Label,
			Design:  wd,
			FuncIdx: idx,
		})
		return true
	})
	return out
}

// childKernelString builds the kernel string of a node's children, mapping
// element children through name and keeping functions.
func childKernelString(k *axml.Kernel, n *xmltree.Tree, name func(*xmltree.Tree) string,
	funcIdx map[string]int) (*axml.KernelString, []int) {
	words := [][]strlang.Symbol{nil}
	var funcs []string
	var idx []int
	for _, c := range n.Children {
		if k.IsFunc(c.Label) {
			funcs = append(funcs, c.Label)
			idx = append(idx, funcIdx[c.Label])
			words = append(words, nil)
		} else {
			words[len(words)-1] = append(words[len(words)-1], name(c))
		}
	}
	ks, err := axml.NewKernelString(words, funcs)
	if err != nil {
		panic(err) // structurally impossible
	}
	return ks, idx
}

// assignWitnesses computes the unique witness of every kernel element node
// under a single-type EDTD (Definition 18). It fails when the kernel's
// fixed structure does not fit the type's vertical language — in which
// case no sound typing exists at all.
func assignWitnesses(e *schema.EDTD, k *axml.Kernel) (map[*xmltree.Tree]string, error) {
	if ok, el := e.IsSingleType(); !ok {
		return nil, fmt.Errorf("core: type is not single-type (element %s)", el)
	}
	root := k.Tree()
	var start string
	found := false
	for _, s := range e.Starts {
		if e.Elem(s) == root.Label {
			start, found = s, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: kernel root %s matches no start of the type", root.Label)
	}
	witness := map[*xmltree.Tree]string{root: start}
	var rec func(n *xmltree.Tree) error
	rec = func(n *xmltree.Tree) error {
		w := witness[n]
		table := map[string]string{}
		for _, b := range e.Rule(w).UsefulSymbols() {
			table[e.Elem(b)] = b
		}
		for _, c := range n.Children {
			if k.IsFunc(c.Label) {
				continue
			}
			cw, ok := table[c.Label]
			if !ok {
				return fmt.Errorf("core: kernel node %s cannot occur under witness %s", c.Label, w)
			}
			witness[c] = cw
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(root); err != nil {
		return nil, err
	}
	return witness, nil
}

// NodeDesigns returns the induced string designs of Definition 18 /
// Theorem 4.5, or an error when the kernel does not fit the type's
// vertical language.
func (d *SDTDDesign) NodeDesigns() ([]*NodeDesign, error) {
	witness, err := assignWitnesses(d.Type, d.Kernel)
	if err != nil {
		return nil, err
	}
	funcIdx := map[string]int{}
	for i, f := range d.Kernel.Funcs() {
		funcIdx[f] = i
	}
	var out []*NodeDesign
	d.Kernel.Tree().Walk(func(n *xmltree.Tree, anc []string) bool {
		if d.Kernel.IsFunc(n.Label) {
			return true
		}
		ks, idx := childKernelString(d.Kernel, n, func(c *xmltree.Tree) string { return witness[c] }, funcIdx)
		wd := NewWordDesign(d.Type.Rule(witness[n]).Lang(), ks)
		wd.AllowTrivialTypes = d.AllowTrivialTypes
		out = append(out, &NodeDesign{
			Path:    append([]string(nil), anc...),
			Witness: witness[n],
			Design:  wd,
			FuncIdx: idx,
		})
		return true
	})
	return out, nil
}

// combineWordTypings assembles per-node word typings into a global word
// typing indexed by the kernel's functions.
func combineWordTypings(n int, designs []*NodeDesign, perNode []WordTyping) WordTyping {
	out := make(WordTyping, n)
	for d, nd := range designs {
		for j, gi := range nd.FuncIdx {
			out[gi] = perNode[d][j]
		}
	}
	return out
}

// freshRoot picks a root name of the form rootN not clashing with e's
// specialized names.
func freshRoot(e *schema.EDTD, i int) string {
	used := map[string]bool{}
	for _, n := range e.SpecializedNames() {
		used[n] = true
	}
	name := fmt.Sprintf("root%d", i+1)
	for used[name] {
		name += "'"
	}
	return name
}

// dtdTypeFor wraps a word language as the DTD type of a function: the
// rules of τ plus a fresh root rule (Theorem 4.2's construction).
func dtdTypeFor(tau *schema.DTD, i int, lang *strlang.NFA) *schema.EDTD {
	e := tau.ToEDTD()
	root := freshRoot(e, i)
	e.Starts = []string{root}
	e.Names[root] = root
	e.Rules[root] = schema.NewContentNFA(lang)
	return e
}

// sdtdTypeFor wraps a word language over Σ̃ as the SDTD type of a function
// (Theorem 4.5's construction).
func sdtdTypeFor(tau *schema.EDTD, i int, lang *strlang.NFA) *schema.EDTD {
	e := tau.Clone()
	root := freshRoot(e, i)
	e.Starts = []string{root}
	e.Names[root] = root
	e.Rules[root] = schema.NewContentNFA(lang)
	return e
}

// TypingFromWords converts a global word typing into the tree typing of
// Theorem 4.2.
func (d *DTDDesign) TypingFromWords(wt WordTyping) Typing {
	out := make(Typing, len(wt))
	for i, lang := range wt {
		out[i] = dtdTypeFor(d.Type, i, lang)
	}
	return out
}

// TypingFromWords converts a global word typing (over Σ̃) into the tree
// typing of Theorem 4.5.
func (d *SDTDDesign) TypingFromWords(wt WordTyping) Typing {
	out := make(Typing, len(wt))
	for i, lang := range wt {
		out[i] = sdtdTypeFor(d.Type, i, lang)
	}
	return out
}

// solveNodes runs a per-node word-problem solver and combines the
// results; ok is false as soon as one node fails.
func solveNodes(n int, designs []*NodeDesign,
	solve func(*WordDesign) (WordTyping, bool)) (WordTyping, bool) {
	perNode := make([]WordTyping, len(designs))
	for i, nd := range designs {
		wt, ok := solve(nd.Design)
		if !ok {
			return nil, false
		}
		perNode[i] = wt
	}
	return combineWordTypings(n, designs, perNode), true
}

// ExistsLocal decides ∃-loc[R-DTD] (Corollary 4.3) and returns a local
// typing when one exists.
func (d *DTDDesign) ExistsLocal() (Typing, bool) {
	wt, ok := solveNodes(d.Kernel.NumFuncs(), d.NodeDesigns(),
		func(wd *WordDesign) (WordTyping, bool) { return wd.LocalTyping() })
	if !ok {
		return nil, false
	}
	return d.TypingFromWords(wt), true
}

// ExistsPerfect decides ∃-perf[R-DTD] and returns the perfect typing when
// it exists.
func (d *DTDDesign) ExistsPerfect() (Typing, bool) {
	wt, ok := solveNodes(d.Kernel.NumFuncs(), d.NodeDesigns(),
		func(wd *WordDesign) (WordTyping, bool) { return wd.PerfectTyping() })
	if !ok {
		return nil, false
	}
	return d.TypingFromWords(wt), true
}

// MaximalLocalWordTypings enumerates the maximal local typings of the
// design as global word typings (the cross product of the per-node
// enumerations).
func (d *DTDDesign) MaximalLocalWordTypings() []WordTyping {
	return crossMaximal(d.Kernel.NumFuncs(), d.NodeDesigns())
}

// ExistsMaximalLocal decides ∃-ml[R-DTD].
func (d *DTDDesign) ExistsMaximalLocal() (Typing, bool) {
	ts := d.MaximalLocalWordTypings()
	if len(ts) == 0 {
		return nil, false
	}
	return d.TypingFromWords(ts[0]), true
}

func crossMaximal(n int, designs []*NodeDesign) []WordTyping {
	perNode := make([][]WordTyping, len(designs))
	for i, nd := range designs {
		perNode[i] = nd.Design.MaximalLocalTypings()
		if len(perNode[i]) == 0 {
			return nil
		}
	}
	var out []WordTyping
	choice := make([]int, len(designs))
	for {
		pick := make([]WordTyping, len(designs))
		for i := range designs {
			pick[i] = perNode[i][choice[i]]
		}
		out = append(out, combineWordTypings(n, designs, pick))
		// Next choice vector.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(perNode[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			return out
		}
	}
}

// ExistsLocal decides ∃-loc[R-SDTD] (Corollary 4.6).
func (d *SDTDDesign) ExistsLocal() (Typing, bool) {
	designs, err := d.NodeDesigns()
	if err != nil {
		return nil, false
	}
	wt, ok := solveNodes(d.Kernel.NumFuncs(), designs,
		func(wd *WordDesign) (WordTyping, bool) { return wd.LocalTyping() })
	if !ok {
		return nil, false
	}
	return d.TypingFromWords(wt), true
}

// ExistsPerfect decides ∃-perf[R-SDTD].
func (d *SDTDDesign) ExistsPerfect() (Typing, bool) {
	designs, err := d.NodeDesigns()
	if err != nil {
		return nil, false
	}
	wt, ok := solveNodes(d.Kernel.NumFuncs(), designs,
		func(wd *WordDesign) (WordTyping, bool) { return wd.PerfectTyping() })
	if !ok {
		return nil, false
	}
	return d.TypingFromWords(wt), true
}

// MaximalLocalWordTypings enumerates the maximal local typings as global
// word typings over Σ̃.
func (d *SDTDDesign) MaximalLocalWordTypings() []WordTyping {
	designs, err := d.NodeDesigns()
	if err != nil {
		return nil
	}
	return crossMaximal(d.Kernel.NumFuncs(), designs)
}

// ExistsMaximalLocal decides ∃-ml[R-SDTD].
func (d *SDTDDesign) ExistsMaximalLocal() (Typing, bool) {
	ts := d.MaximalLocalWordTypings()
	if len(ts) == 0 {
		return nil, false
	}
	return d.TypingFromWords(ts[0]), true
}

// IsLocal decides loc[R-DTD] for a D-consistent typing: typeT(τn) ≡ τ.
func (d *DTDDesign) IsLocal(typing Typing) (bool, error) {
	res, err := ConsDTD(d.Kernel, typing, schema.KindNFA)
	if err != nil {
		return false, err
	}
	if !res.Consistent {
		return false, nil
	}
	ok, _ := schema.EquivalentDTD(res.DTD, d.Type)
	return ok, nil
}

// IsLocal decides loc[R-SDTD] for a D-consistent typing.
func (d *SDTDDesign) IsLocal(typing Typing) (bool, error) {
	res, err := ConsSDTD(d.Kernel, typing, schema.KindNFA)
	if err != nil {
		return false, err
	}
	if !res.Consistent {
		return false, nil
	}
	ok, _ := schema.EquivalentSDTD(res.EDTD, d.Type)
	return ok, nil
}

// wordTypingOf extracts the per-node word typings from a tree typing: the
// root content of each τi, projected by proj.
func wordTypingOf(typing Typing, proj func(i int, lang *strlang.NFA) *strlang.NFA) WordTyping {
	out := make(WordTyping, len(typing))
	for i, tau := range typing {
		lang := RootContent(tau)
		if proj != nil {
			lang = proj(i, lang)
		}
		out[i] = lang
	}
	return out
}

// IsMaximalLocal decides ml[R-DTD]: local plus per-node word maximality
// (Corollary 4.3). The typing's root contents are projected to element
// names.
func (d *DTDDesign) IsMaximalLocal(typing Typing) (bool, error) {
	local, err := d.IsLocal(typing)
	if err != nil || !local {
		return false, err
	}
	wt := wordTypingOf(typing, func(i int, lang *strlang.NFA) *strlang.NFA {
		return relabel(lang, typing[i].Elem)
	})
	return d.checkNodeMaximality(wt)
}

func (d *DTDDesign) checkNodeMaximality(wt WordTyping) (bool, error) {
	for _, nd := range d.NodeDesigns() {
		local := make(WordTyping, len(nd.FuncIdx))
		for j, gi := range nd.FuncIdx {
			local[j] = wt[gi]
		}
		ok, err := nd.Design.MaximalSound(local)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// IsPerfect decides perf[R-DTD]: local plus per-node word perfection.
func (d *DTDDesign) IsPerfect(typing Typing) (bool, error) {
	local, err := d.IsLocal(typing)
	if err != nil || !local {
		return false, err
	}
	wt := wordTypingOf(typing, func(i int, lang *strlang.NFA) *strlang.NFA {
		return relabel(lang, typing[i].Elem)
	})
	for _, nd := range d.NodeDesigns() {
		local := make(WordTyping, len(nd.FuncIdx))
		for j, gi := range nd.FuncIdx {
			local[j] = wt[gi]
		}
		if !nd.Design.IsPerfect(local) {
			return false, nil
		}
	}
	return true, nil
}

// IsMaximalLocal decides ml[R-SDTD].
func (d *SDTDDesign) IsMaximalLocal(typing Typing) (bool, error) {
	local, err := d.IsLocal(typing)
	if err != nil || !local {
		return false, err
	}
	designs, err := d.NodeDesigns()
	if err != nil {
		return false, err
	}
	wt := wordTypingOf(typing, nil)
	for _, nd := range designs {
		local := make(WordTyping, len(nd.FuncIdx))
		for j, gi := range nd.FuncIdx {
			local[j] = wt[gi]
		}
		ok, err := nd.Design.MaximalSound(local)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// IsPerfect decides perf[R-SDTD].
func (d *SDTDDesign) IsPerfect(typing Typing) (bool, error) {
	local, err := d.IsLocal(typing)
	if err != nil || !local {
		return false, err
	}
	designs, err := d.NodeDesigns()
	if err != nil {
		return false, err
	}
	wt := wordTypingOf(typing, nil)
	for _, nd := range designs {
		local := make(WordTyping, len(nd.FuncIdx))
		for j, gi := range nd.FuncIdx {
			local[j] = wt[gi]
		}
		if !nd.Design.IsPerfect(local) {
			return false, nil
		}
	}
	return true, nil
}
