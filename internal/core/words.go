package core

import (
	"fmt"

	"dxml/internal/axml"
	"dxml/internal/strlang"
)

// This file implements the typing problems for words (Section 5) and
// boxes (Section 7): the verification problems loc/ml/perf[nFA] and the
// existence problems ∃-loc/∃-ml/∃-perf[nFA], via the perfect automaton and
// the Dec(Ωi) cell decomposition.
//
// Everything is implemented over kernel boxes; WordDesign is the
// singleton-box special case.

// BoxDesign is a top-down design ⟨A, B⟩: a target nFA-type and a kernel
// box.
//
// AllowTrivialTypes controls a convention the paper leaves tacit: whether
// a function may be typed with the trivial language {ε} (a resource that
// can only ever contribute nothing). The paper's examples require trivial
// types to be excluded — under the literal Definition 12, Example 11's
// design would have the degenerate local typing (ab+ba, {ε}) and
// Figure 5's bad design would have one where a single function grabs the
// whole content — so exclusion is the default. Set AllowTrivialTypes for
// the literal reading; see DESIGN.md erratum E4.
type BoxDesign struct {
	Target *strlang.NFA
	Kernel *axml.KernelBox

	AllowTrivialTypes bool

	// DisableSearchPruning turns off the prefix-soundness pruning of the
	// cell-union search. Only useful for the ablation benchmarks — the
	// pruned and unpruned searches are equivalent, the unpruned one is
	// just exponentially slower on designs like Figure 5's.
	DisableSearchPruning bool

	perfect *PerfectAutomaton
	cells   [][]Cell
}

// WordDesign is a top-down design ⟨A, w⟩ over a kernel string.
type WordDesign struct {
	BoxDesign
	KernelString *axml.KernelString
}

// NewBoxDesign builds a box design.
func NewBoxDesign(target *strlang.NFA, kernel *axml.KernelBox) *BoxDesign {
	return &BoxDesign{Target: target, Kernel: kernel}
}

// NewWordDesign builds a word design.
func NewWordDesign(target *strlang.NFA, kernel *axml.KernelString) *WordDesign {
	return &WordDesign{
		BoxDesign:    BoxDesign{Target: target, Kernel: kernel.Box()},
		KernelString: kernel,
	}
}

// MustWordDesign parses a regex target and a kernel string, e.g.
// MustWordDesign("a* b c*", "f1 b f2").
func MustWordDesign(targetRegex, kernel string) *WordDesign {
	return NewWordDesign(
		strlang.RegexNFA(strlang.MustParseRegex(targetRegex)),
		axml.MustParseKernelString(kernel))
}

// Perfect returns the design's perfect automaton, built on first use.
func (d *BoxDesign) Perfect() *PerfectAutomaton {
	if d.perfect == nil {
		d.perfect = BuildPerfect(d.Target, d.Kernel)
	}
	return d.perfect
}

// Cells returns the Dec(Ωi) cells per function, built on first use.
func (d *BoxDesign) Cells() [][]Cell {
	if d.cells == nil {
		p := d.Perfect()
		d.cells = make([][]Cell, d.Kernel.NumFuncs())
		for i := 1; i <= d.Kernel.NumFuncs(); i++ {
			autos := make([]*strlang.NFA, len(p.Aut(i)))
			for j, la := range p.Aut(i) {
				autos[j] = la.Lang
			}
			d.cells[i-1] = DecomposeCells(autos)
		}
	}
	return d.cells
}

// ExtensionNFA returns the automaton for ext_B(τn) = B0 τ1 B1 … τn Bn.
func (d *BoxDesign) ExtensionNFA(typing WordTyping) *strlang.NFA {
	parts := make([]*strlang.NFA, 0, 2*len(typing)+1)
	for i, b := range d.Kernel.Boxes {
		parts = append(parts, strlang.BoxNFA(b))
		if i < len(typing) {
			parts = append(parts, typing[i])
		}
	}
	return strlang.ConcatAll(parts...)
}

// Sound reports whether ext(τn) ⊆ [A] (Definition 12); the witness is a
// violating extension string.
func (d *BoxDesign) Sound(typing WordTyping) (bool, []strlang.Symbol) {
	return strlang.Included(d.ExtensionNFA(typing), d.Target)
}

// Complete reports whether ext(τn) ⊇ [A]; the witness is a string of [A]
// not covered.
func (d *BoxDesign) Complete(typing WordTyping) (bool, []strlang.Symbol) {
	return strlang.Included(d.Target, d.ExtensionNFA(typing))
}

// Local decides loc[nFA] (Theorem 5.3): ext(τn) = [A].
func (d *BoxDesign) Local(typing WordTyping) bool {
	ok, _ := strlang.Equivalent(d.ExtensionNFA(typing), d.Target)
	return ok
}

// MaximalSound decides whether the sound typing (τn) is maximal among the
// sound typings (Theorem 7.1's procedure): no Dec(Ωi) cell extends some τi
// while preserving soundness. It requires (τn) to be sound.
func (d *BoxDesign) MaximalSound(typing WordTyping) (bool, error) {
	if ok, w := d.Sound(typing); !ok {
		return false, fmt.Errorf("core: typing is not sound (witness %v)", w)
	}
	cells := d.Cells()
	for i := range typing {
		for _, cell := range cells[i] {
			inter := strlang.Intersect(cell.Lang, typing[i])
			if inter.IsEmpty() {
				// Total extension: sound iff adding the whole cell stays
				// inside [A] (Lemma 6.9 handles the partial case; here we
				// check directly).
				extended := append(WordTyping{}, typing...)
				extended[i] = strlang.Union(typing[i], cell.Lang)
				if ok, _ := d.Sound(extended); ok {
					return false, nil
				}
			} else if ok, _ := strlang.Included(cell.Lang, typing[i]); !ok {
				// Partial extension: by Lemma 6.9 the extension by the cell
				// is still sound, so (τn) is not maximal.
				return false, nil
			}
		}
	}
	return true, nil
}

// MaximalLocal decides ml[nFA]: the typing is local and maximal.
func (d *BoxDesign) MaximalLocal(typing WordTyping) (bool, error) {
	if !d.Local(typing) {
		return false, nil
	}
	return d.MaximalSound(typing)
}

// PerfectTyping decides ∃-perf[nFA] (Theorems 6.5 and 6.8): a perfect
// typing exists iff w(Ωn) ≡ A, in which case it is exactly (Ωn).
//
// Under the default no-trivial-types convention (see AllowTrivialTypes),
// Ω components may be inflated by ε-options that no admissible typing can
// use, so when the Ω test fails the decision falls back to the equivalent
// characterization “the maximal sound typing is unique and local”, over
// the Dec(Ωi) cell space (complete by Theorems 6.3 and 6.10).
func (d *BoxDesign) PerfectTyping() (WordTyping, bool) {
	p := d.Perfect()
	if !p.Compatible() {
		return nil, false
	}
	omega := p.TypingOmega()
	omegaAdmissible := true
	if !d.AllowTrivialTypes {
		for _, o := range omega {
			if isTrivialEps(o) {
				omegaAdmissible = false
				break
			}
		}
	}
	if omegaAdmissible && d.Local(omega) {
		return omega, true
	}
	if d.AllowTrivialTypes {
		// Theorem 6.5 is exact in the literal reading.
		return nil, false
	}
	// Convention mode: a typing is perfect iff it dominates every sound
	// admissible typing and is local — equivalently, the maximal sound
	// cell-union tuple is unique and local.
	maximal := d.maximalSoundTuples()
	if len(maximal) != 1 {
		return nil, false
	}
	cells := d.Cells()
	typing := make(WordTyping, len(maximal[0]))
	for j := range maximal[0] {
		typing[j] = cellUnion(cells[j], maximal[0][j])
	}
	if d.Local(typing) {
		return typing, true
	}
	return nil, false
}

// IsPerfect decides perf[nFA] (Theorem 6.7): the typing is perfect iff it
// is local and equivalent to the design's perfect typing.
func (d *BoxDesign) IsPerfect(typing WordTyping) bool {
	perfect, ok := d.PerfectTyping()
	if !ok {
		return false
	}
	return d.Local(typing) && EquivWord(typing, perfect)
}

// maximalSoundTuples returns the maximal elements of the sound cell-union
// tuples.
func (d *BoxDesign) maximalSoundTuples() [][][]int {
	tuples := d.soundTuples()
	var out [][][]int
	for i, t := range tuples {
		isMax := true
		for j, u := range tuples {
			if i != j && tupleDominated(t, u) {
				isMax = false
				break
			}
		}
		if isMax {
			out = append(out, t)
		}
	}
	return out
}

// tupleDominated reports whether a < b as cell-index sets (cells are
// disjoint, so this is componentwise language inclusion).
func tupleDominated(a, b [][]int) bool {
	leq, lt := true, false
	for i := range a {
		set := map[int]bool{}
		for _, x := range b[i] {
			set[x] = true
		}
		for _, x := range a[i] {
			if !set[x] {
				leq = false
			}
		}
		if len(a[i]) < len(b[i]) {
			lt = true
		}
	}
	return leq && lt
}

// cellUnion returns the union of the selected cells (by index).
func cellUnion(cells []Cell, selection []int) *strlang.NFA {
	langs := make([]*strlang.NFA, len(selection))
	for i, c := range selection {
		langs[i] = cells[c].Lang
	}
	return strlang.UnionAll(langs...)
}

// soundTuples enumerates all sound typings that are unions of nonempty
// cell subsets per function, as index-set tuples. This is the search space
// of Theorem 6.11: every maximal sound typing is of this shape
// (Theorem 6.10), so the enumeration is complete for ∃-loc and ∃-ml.
// Worst-case exponential, matching the problems' EXPSPACE upper bounds;
// branches whose partial extension already falls outside the prefixes of
// [A] are pruned.
func (d *BoxDesign) soundTuples() [][][]int {
	cells := d.Cells()
	n := d.Kernel.NumFuncs()
	if n == 0 {
		return nil
	}
	// Prefix closure of the target: the trimmed automaton with every
	// state final (all states are co-reachable after trimming).
	pref, _ := d.Target.Trim()
	prefAll := pref.Clone()
	for q := 0; q < prefAll.NumStates(); q++ {
		prefAll.MarkFinal(q)
	}
	var out [][][]int
	cur := make([][]int, n)
	langs := make([]*strlang.NFA, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			typing := make(WordTyping, n)
			copy(typing, langs)
			if ok, _ := d.Sound(typing); ok {
				snapshot := make([][]int, n)
				for j := range cur {
					snapshot[j] = append([]int(nil), cur[j]...)
				}
				out = append(out, snapshot)
			}
			return
		}
		total := len(cells[i])
		for mask := 1; mask < 1<<total; mask++ {
			var sel []int
			for b := 0; b < total; b++ {
				if mask&(1<<b) != 0 {
					sel = append(sel, b)
				}
			}
			cur[i] = sel
			langs[i] = cellUnion(cells[i], sel)
			if !d.AllowTrivialTypes && isTrivialEps(langs[i]) {
				continue
			}
			// Prefix pruning: B0 τ1 B1 … τ_{i+1} must stay within the
			// prefixes of [A].
			if !d.DisableSearchPruning {
				parts := make([]*strlang.NFA, 0, 2*i+3)
				for j := 0; j <= i; j++ {
					parts = append(parts, strlang.BoxNFA(d.Kernel.Boxes[j]), langs[j])
				}
				prefix := strlang.ConcatAll(parts...)
				if ok, _ := strlang.Included(prefix, prefAll); !ok {
					continue
				}
			}
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// LocalTyping decides ∃-loc[nFA] and returns a local typing when one
// exists. It checks the necessary condition Ω ≡ A (Lemma 6.1 +
// Theorem 6.3) first, tries the perfect typing (Ωn), then searches the
// cell-union space (complete by Theorems 6.3 and 6.10: every local typing
// extends to a maximal local one, which is a cell union).
func (d *BoxDesign) LocalTyping() (WordTyping, bool) {
	p := d.Perfect()
	if !p.Compatible() {
		return nil, false
	}
	if ok, _ := strlang.Equivalent(p.OmegaNFA(), d.Target); !ok {
		return nil, false
	}
	omega := p.TypingOmega()
	if d.Local(omega) {
		admissible := true
		if !d.AllowTrivialTypes {
			for _, o := range omega {
				if isTrivialEps(o) {
					admissible = false
					break
				}
			}
		}
		if admissible {
			return omega, true
		}
	}
	cells := d.Cells()
	for _, tuple := range d.soundTuples() {
		typing := make(WordTyping, len(tuple))
		for j := range tuple {
			typing[j] = cellUnion(cells[j], tuple[j])
		}
		if d.Local(typing) {
			return typing, true
		}
	}
	return nil, false
}

// MaximalLocalTypings enumerates all maximal local typings (as cell
// unions; complete by Theorem 6.10). ∃-ml[nFA] is non-emptiness of the
// result.
func (d *BoxDesign) MaximalLocalTypings() []WordTyping {
	cells := d.Cells()
	var out []WordTyping
	for _, t := range d.maximalSoundTuples() {
		typing := make(WordTyping, len(t))
		for j := range t {
			typing[j] = cellUnion(cells[j], t[j])
		}
		if d.Local(typing) {
			out = append(out, typing)
		}
	}
	return out
}

// ExistsMaximalLocal decides ∃-ml[nFA].
func (d *BoxDesign) ExistsMaximalLocal() (WordTyping, bool) {
	ts := d.MaximalLocalTypings()
	if len(ts) == 0 {
		return nil, false
	}
	return ts[0], true
}

// MaximalSoundTypings enumerates the maximal sound typings (as cell
// unions, complete by Theorem 6.10). Unlike MaximalLocalTypings, the
// results need not be local — Remark 2 notes they are the fallback when a
// design admits no local typing.
func (d *BoxDesign) MaximalSoundTypings() []WordTyping {
	cells := d.Cells()
	var out []WordTyping
	for _, t := range d.maximalSoundTuples() {
		typing := make(WordTyping, len(t))
		for j := range t {
			typing[j] = cellUnion(cells[j], t[j])
		}
		out = append(out, typing)
	}
	return out
}

// QuasiPerfectTyping decides the quasi-perfect property of Remark 2: a
// (possibly non-local) unique maximal sound typing comprising every other
// sound typing. Every perfect typing is quasi-perfect; the converse fails
// exactly when the quasi-perfect typing is not local.
func (d *BoxDesign) QuasiPerfectTyping() (WordTyping, bool) {
	maximal := d.MaximalSoundTypings()
	if len(maximal) != 1 {
		return nil, false
	}
	return maximal[0], true
}

// isTrivialEps reports whether [a] = {ε}.
func isTrivialEps(a *strlang.NFA) bool {
	ok, _ := strlang.Equivalent(a, strlang.EpsLang())
	return ok
}
