package core

import (
	"testing"

	"dxml/internal/axml"
	"dxml/internal/strlang"
)

// enumerateBoxStrings expands a box into its member strings.
func enumerateBoxStrings(b strlang.Box) [][]strlang.Symbol {
	out := [][]strlang.Symbol{nil}
	for _, set := range b {
		var next [][]strlang.Symbol
		for _, prefix := range out {
			for _, s := range set {
				w := append(append([]strlang.Symbol{}, prefix...), s)
				next = append(next, w)
			}
		}
		out = next
	}
	return out
}

// TestLemma72BoxVsStringDesigns checks Lemma 7.2: a typing is sound for
// the box design iff it is sound for every string design D^k obtained by
// fixing the box positions; and local for the box implies sound for each
// D^k.
func TestLemma72BoxVsStringDesigns(t *testing.T) {
	kb, err := axml.NewKernelBox(
		[]strlang.Box{{{"a", "b"}}, {{"c", "d"}}},
		[]string{"f1"},
	)
	if err != nil {
		t.Fatal(err)
	}
	target := strlang.RegexNFA(strlang.MustParseRegex("(a|b) x* (c|d)"))
	box := NewBoxDesign(target, kb)

	typings := []WordTyping{
		MustWordTyping("x*"),
		MustWordTyping("x"),
		MustWordTyping("x* y?"), // unsound
	}
	// Enumerate the D^k string designs.
	var stringDesigns []*WordDesign
	for _, w0 := range enumerateBoxStrings(kb.Boxes[0]) {
		for _, w1 := range enumerateBoxStrings(kb.Boxes[1]) {
			ks, err := axml.NewKernelString([][]strlang.Symbol{w0, w1}, []string{"f1"})
			if err != nil {
				t.Fatal(err)
			}
			stringDesigns = append(stringDesigns, NewWordDesign(target, ks))
		}
	}
	if len(stringDesigns) != 4 {
		t.Fatalf("expected 4 string designs, got %d", len(stringDesigns))
	}
	for i, typing := range typings {
		boxSound, _ := box.Sound(typing)
		allSound := true
		for _, sd := range stringDesigns {
			if ok, _ := sd.Sound(typing); !ok {
				allSound = false
				break
			}
		}
		if boxSound != allSound {
			t.Errorf("typing %d: box-sound=%v but all-string-sound=%v (Lemma 7.2)",
				i, boxSound, allSound)
		}
	}
	// Local for the box implies sound for each D^k.
	local, ok := box.LocalTyping()
	if !ok {
		t.Fatal("box design should have a local typing (x*)")
	}
	for k, sd := range stringDesigns {
		if ok, w := sd.Sound(local); !ok {
			t.Errorf("box-local typing unsound for D^%d (witness %v)", k, w)
		}
	}
}

// TestBoxPerfectMatchesPerString: when the box positions are singletons,
// the box design degenerates to the word design.
func TestBoxPerfectMatchesPerString(t *testing.T) {
	ks := axml.MustParseKernelString("a f1 c f2 e")
	target := strlang.RegexNFA(strlang.MustParseRegex("a b c c d e"))
	viaWord := NewWordDesign(target, ks)
	viaBox := NewBoxDesign(target, ks.Box())
	wOmega := viaWord.Perfect().TypingOmega()
	bOmega := viaBox.Perfect().TypingOmega()
	if !EquivWord(wOmega, bOmega) {
		t.Error("singleton-box Ω differs from word Ω")
	}
	_, wOK := viaWord.PerfectTyping()
	_, bOK := viaBox.PerfectTyping()
	if wOK != bOK {
		t.Errorf("∃-perf disagrees: word=%v box=%v", wOK, bOK)
	}
}

func BenchmarkBoxLocalTyping(b *testing.B) {
	kb, _ := axml.NewKernelBox(
		[]strlang.Box{{}, {{"a1", "a2"}}, {}},
		[]string{"f1", "f2"},
	)
	target := strlang.RegexNFA(strlang.MustParseRegex("(a1 a2)+"))
	for i := 0; i < b.N; i++ {
		d := NewBoxDesign(target, kb)
		if _, ok := d.LocalTyping(); ok {
			b.Fatal("should have no local typing")
		}
	}
}
