package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// FromXML reads an XML document and returns its structural tree: element
// nodes only, in document order. Character data, comments, processing
// instructions and attributes are dropped, matching the paper's structural
// abstraction of XML.
func FromXML(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*Tree
	var root *Tree
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			n := &Tree{Label: el.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple roots")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unterminated elements")
	}
	return root, nil
}

// ParseXML parses an XML document from a string.
func ParseXML(src string) (*Tree, error) { return FromXML(strings.NewReader(src)) }

// ToXML writes t as an XML document with two-space indentation. The
// emitter assembles each output line into a reused buffer (no fmt, no
// per-node allocations), so serializing straight into a transport's
// chunk frames costs the writer's copies and nothing else.
func (t *Tree) ToXML(w io.Writer) error {
	e := xmlEmitter{w: w}
	return e.emit(t, 0)
}

// xmlEmitter holds the two reusable buffers of an incremental
// serialization: the indent ladder (grown once to the deepest level
// reached) and the line being assembled. Both persist across nodes, so
// steady-state emission is allocation-free.
type xmlEmitter struct {
	w      io.Writer
	indent []byte // two-space ladder; indent[:2*depth] is one node's prefix
	line   []byte // current output line, reused node to node
}

func (e *xmlEmitter) emit(t *Tree, depth int) error {
	for len(e.indent) < 2*depth {
		e.indent = append(e.indent, ' ', ' ')
	}
	line := append(e.line[:0], e.indent[:2*depth]...)
	line = append(line, '<')
	line = append(line, t.Label...)
	if len(t.Children) == 0 {
		line = append(line, '/', '>', '\n')
		e.line = line
		_, err := e.w.Write(line)
		return err
	}
	line = append(line, '>', '\n')
	e.line = line
	if _, err := e.w.Write(line); err != nil {
		return err
	}
	for _, c := range t.Children {
		if err := e.emit(c, depth+1); err != nil {
			return err
		}
	}
	line = append(e.line[:0], e.indent[:2*depth]...)
	line = append(line, '<', '/')
	line = append(line, t.Label...)
	line = append(line, '>', '\n')
	e.line = line
	_, err := e.w.Write(line)
	return err
}

// XMLString renders t as indented XML.
func (t *Tree) XMLString() string {
	var b strings.Builder
	_ = t.ToXML(&b)
	return b.String()
}

// XMLSize returns len(t.XMLString()) without materializing the
// serialization: the p2p wire uses it to announce (and account for) a
// fragment's full size while shipping it incrementally in chunks.
func (t *Tree) XMLSize() int { return t.xmlSize(0) }

func (t *Tree) xmlSize(depth int) int {
	indent := 2 * depth
	if len(t.Children) == 0 {
		return indent + len(t.Label) + 4 // <x/>\n
	}
	n := 2*indent + 2*len(t.Label) + 7 // <x>\n + </x>\n
	for _, c := range t.Children {
		n += c.xmlSize(depth + 1)
	}
	return n
}
