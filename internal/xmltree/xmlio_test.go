package xmltree

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// fmtXML is the reference serializer the emitter replaced: the output
// format is pinned byte for byte against it (the p2p wire accounts
// fragment bytes by this serialization, so the format is an invariant,
// not an aesthetic).
func fmtXML(t *Tree, w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	if len(t.Children) == 0 {
		fmt.Fprintf(w, "%s<%s/>\n", indent, t.Label)
		return
	}
	fmt.Fprintf(w, "%s<%s>\n", indent, t.Label)
	for _, c := range t.Children {
		fmtXML(c, w, depth+1)
	}
	fmt.Fprintf(w, "%s</%s>\n", indent, t.Label)
}

func TestToXMLMatchesReferenceFormat(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(r, 5)
		var want strings.Builder
		fmtXML(tr, &want, 0)
		if got := tr.XMLString(); got != want.String() {
			t.Fatalf("emitter diverges from reference format:\n%q\nvs\n%q", got, want.String())
		}
		if got, want := tr.XMLSize(), len(tr.XMLString()); got != want {
			t.Fatalf("XMLSize = %d, serialization is %d bytes", got, want)
		}
	}
}

// TestToXMLAllocationFree pins the satellite claim: steady-state
// serialization of an arbitrarily large tree performs no per-node
// allocations (the line and indent buffers are reused; a warm-up run
// grows them once).
func TestToXMLAllocationFree(t *testing.T) {
	doc := New("root")
	for i := 0; i < 2000; i++ {
		doc.Children = append(doc.Children,
			New("entry", Leaf("value"), Leaf("year"), New("deep", Leaf("leaf"))))
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := doc.ToXML(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	// One emitter struct per call plus buffer growth amortized to ~0;
	// anything per-node would show up as thousands.
	if allocs > 8 {
		t.Errorf("ToXML allocates %v times per document; the emitter should be allocation-free per node", allocs)
	}
}

type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("writer full")
	}
	w.n--
	return len(p), nil
}

func TestToXMLStopsOnWriteError(t *testing.T) {
	doc := New("root", Leaf("a"), Leaf("b"), Leaf("c"))
	if err := doc.ToXML(&errWriter{n: 2}); err == nil {
		t.Error("write error not propagated")
	}
}
