package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"s", "s"},
		{"s(a b)", "s(a b)"},
		{"s(a, b)", "s(a b)"},
		{"s0(a f1 b(f2))", "s0(a f1 b(f2))"},
		{"eurostat(f1 nationalIndex(f2) f3)", "eurostat(f1 nationalIndex(f2) f3)"},
		{"s( a ( b ) )", "s(a(b))"},
	}
	for _, c := range cases {
		tr, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := tr.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(", "s(", "s(a", "s)x", "s a"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSizeChildStrEqual(t *testing.T) {
	tr := MustParse("s(a(b c) d)")
	if tr.Size() != 5 {
		t.Errorf("Size = %d, want 5", tr.Size())
	}
	cs := tr.ChildStr()
	if strings.Join(cs, " ") != "a d" {
		t.Errorf("ChildStr = %v", cs)
	}
	if !tr.Equal(MustParse("s(a(b c) d)")) {
		t.Error("Equal on identical trees failed")
	}
	if tr.Equal(MustParse("s(a(b c) e)")) {
		t.Error("Equal on different trees succeeded")
	}
	cl := tr.Clone()
	cl.Children[0].Label = "x"
	if tr.Children[0].Label == "x" {
		t.Error("Clone is shallow")
	}
}

func TestWalkAncStr(t *testing.T) {
	tr := MustParse("s(a(b) c)")
	var visits []string
	tr.Walk(func(n *Tree, anc []string) bool {
		visits = append(visits, n.Label+":"+strings.Join(anc, "/"))
		return true
	})
	want := []string{"s:s", "a:s/a", "b:s/a/b", "c:s/c"}
	if strings.Join(visits, " ") != strings.Join(want, " ") {
		t.Errorf("Walk order = %v, want %v", visits, want)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := MustParse("s(a b c)")
	count := 0
	tr.Walk(func(n *Tree, _ []string) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("Walk visited %d nodes after stop, want 2", count)
	}
}

func TestLabelsAndMapLabels(t *testing.T) {
	tr := MustParse("s(a(b) a)")
	labels := tr.Labels()
	if strings.Join(labels, " ") != "s a b" {
		t.Errorf("Labels = %v", labels)
	}
	m := tr.MapLabels(func(l string) string { return l + "!" })
	if m.String() != "s!(a!(b!) a!)" {
		t.Errorf("MapLabels = %s", m)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tr := MustParse("eurostat(averages(Good index(value year)) nationalIndex(country Good index(value year)))")
	xmlStr := tr.XMLString()
	back, err := ParseXML(xmlStr)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	if !tr.Equal(back) {
		t.Errorf("XML round trip changed tree:\n%s\nvs\n%s", tr, back)
	}
}

func TestFromXMLDropsText(t *testing.T) {
	tr, err := ParseXML("<a>hello<b>world</b><!-- c --></a>")
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() != "a(b)" {
		t.Errorf("got %s, want a(b)", tr)
	}
}

func TestFromXMLErrors(t *testing.T) {
	for _, src := range []string{"", "<a>", "<a></b>", "<a/><b/>"} {
		if _, err := ParseXML(src); err == nil {
			t.Errorf("ParseXML(%q) should fail", src)
		}
	}
}

// randomTree builds a random tree for property tests.
func randomTree(r *rand.Rand, depth int) *Tree {
	labels := []string{"a", "b", "c", "s"}
	t := &Tree{Label: labels[r.Intn(len(labels))]}
	if depth > 0 {
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			t.Children = append(t.Children, randomTree(r, depth-1))
		}
	}
	return t
}

func TestTermSyntaxRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 3)
		back, err := Parse(tr.String())
		return err == nil && tr.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestXMLRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 3)
		back, err := ParseXML(tr.XMLString())
		return err == nil && tr.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestXMLSizeMatchesXMLString pins the size computation against the
// actual serialization across shapes: leaves, nesting, wide fan-out.
func TestXMLSizeMatchesXMLString(t *testing.T) {
	docs := []string{
		"a",
		"root(a b c)",
		"s(a(b(c(d(e)))))",
		"eurostat(averages(Good index(value year)) nationalIndex(country Good value year))",
		"longlabelname(x y(zz(w w w)) q)",
	}
	for _, src := range docs {
		tr := MustParse(src)
		if got, want := tr.XMLSize(), len(tr.XMLString()); got != want {
			t.Errorf("XMLSize(%s) = %d, len(XMLString) = %d", src, got, want)
		}
	}
	// A wide generated document.
	wide := MustParse("s")
	for i := 0; i < 500; i++ {
		wide.Children = append(wide.Children, MustParse("nationalIndex(country Good index(value year))"))
	}
	if got, want := wide.XMLSize(), len(wide.XMLString()); got != want {
		t.Errorf("wide doc: XMLSize = %d, len(XMLString) = %d", got, want)
	}
}
