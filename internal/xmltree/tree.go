// Package xmltree implements the structural abstraction of XML documents
// used throughout the paper: finite, ordered, unranked trees with nodes
// labeled over an alphabet (Section 2.1.1). It provides the term syntax
// used in the paper's examples (“s0(a f1 b(f2))”), the node predicates
// child-str and anc-str, and import/export to concrete XML via
// encoding/xml.
package xmltree

import (
	"fmt"
	"strings"
	"unicode"
)

// Tree is a finite ordered unranked tree with string labels. The zero value
// is not a valid tree; use New or Parse.
type Tree struct {
	Label    string
	Children []*Tree
}

// New returns a tree with the given root label and children.
func New(label string, children ...*Tree) *Tree {
	return &Tree{Label: label, Children: children}
}

// Leaf returns a leaf node with the given label.
func Leaf(label string) *Tree { return &Tree{Label: label} }

// IsLeaf reports whether t has no children.
func (t *Tree) IsLeaf() bool { return len(t.Children) == 0 }

// Size returns ‖t‖, the number of nodes of t.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	out := &Tree{Label: t.Label}
	if len(t.Children) > 0 {
		out.Children = make([]*Tree, len(t.Children))
		for i, c := range t.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Equal reports whether t and u are identical trees.
func (t *Tree) Equal(u *Tree) bool {
	if t.Label != u.Label || len(t.Children) != len(u.Children) {
		return false
	}
	for i, c := range t.Children {
		if !c.Equal(u.Children[i]) {
			return false
		}
	}
	return true
}

// ChildStr returns child-str(t): the labels of t's children in left-to-right
// order (Section 2.1.1).
func (t *Tree) ChildStr() []string {
	out := make([]string, len(t.Children))
	for i, c := range t.Children {
		out[i] = c.Label
	}
	return out
}

// Walk visits every node of t in document (preorder, left-to-right) order,
// passing the node and its ancestor label string anc-str (which includes
// the node's own label, as in the paper). Walk stops early if f returns
// false.
func (t *Tree) Walk(f func(node *Tree, ancStr []string) bool) {
	var rec func(n *Tree, anc []string) bool
	rec = func(n *Tree, anc []string) bool {
		anc = append(anc, n.Label)
		if !f(n, anc) {
			return false
		}
		for _, c := range n.Children {
			if !rec(c, anc) {
				return false
			}
		}
		return true
	}
	rec(t, nil)
}

// EmitEvents streams t as SAX-style structural events in document order:
// start(label) on entering a node, end() on leaving it. It is the bridge
// between materialized trees and streaming consumers (validators,
// serializers) — the consumer sees exactly the event sequence an XML
// parser would produce for the tree, using stack memory proportional to
// the tree's depth. Emission stops at the first error, which is returned.
func (t *Tree) EmitEvents(start func(label string) error, end func() error) error {
	if err := start(t.Label); err != nil {
		return err
	}
	for _, c := range t.Children {
		if err := c.EmitEvents(start, end); err != nil {
			return err
		}
	}
	return end()
}

// EmitChildEvents emits the events of t's children only — the forest a
// docking point contributes under Active XML extension semantics
// (Section 2.3: a function node is replaced by the forest directly under
// the fragment's root).
func (t *Tree) EmitChildEvents(start func(label string) error, end func() error) error {
	for _, c := range t.Children {
		if err := c.EmitEvents(start, end); err != nil {
			return err
		}
	}
	return nil
}

// Labels returns the set of labels occurring in t, in first-visit order.
func (t *Tree) Labels() []string {
	seen := map[string]bool{}
	var out []string
	t.Walk(func(n *Tree, _ []string) bool {
		if !seen[n.Label] {
			seen[n.Label] = true
			out = append(out, n.Label)
		}
		return true
	})
	return out
}

// MapLabels returns a copy of t with every label l replaced by f(l).
func (t *Tree) MapLabels(f func(string) string) *Tree {
	out := &Tree{Label: f(t.Label)}
	if len(t.Children) > 0 {
		out.Children = make([]*Tree, len(t.Children))
		for i, c := range t.Children {
			out.Children[i] = c.MapLabels(f)
		}
	}
	return out
}

// String renders t in the paper's term syntax, e.g. "s(a b(c d))".
func (t *Tree) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Tree) write(b *strings.Builder) {
	b.WriteString(t.Label)
	if len(t.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range t.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.write(b)
	}
	b.WriteByte(')')
}

// --- term syntax parser ---

func isLabelRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) ||
		c == '_' || c == '~' || c == '^' || c == '.' || c == '#' || c == '\''
}

type treeParser struct {
	src []rune
	pos int
}

// Parse parses the term syntax: label, optionally followed by a
// parenthesized, whitespace/comma-separated child list, e.g.
// "eurostat(f1 nationalIndex(f2) f3)".
func Parse(src string) (*Tree, error) {
	p := &treeParser{src: []rune(src)}
	t, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree %q: trailing input at offset %d", src, p.pos)
	}
	return t, nil
}

// MustParse is Parse that panics on error, for tests and fixed tables.
func MustParse(src string) *Tree {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

func (p *treeParser) skipSpace() {
	for p.pos < len(p.src) && (unicode.IsSpace(p.src[p.pos]) || p.src[p.pos] == ',') {
		p.pos++
	}
}

func (p *treeParser) parseTree() (*Tree, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isLabelRune(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("tree: expected label at offset %d", p.pos)
	}
	t := &Tree{Label: string(p.src[start:p.pos])}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("tree: missing ')'")
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			c, err := p.parseTree()
			if err != nil {
				return nil, err
			}
			t.Children = append(t.Children, c)
		}
	}
	return t, nil
}
