// Benchmarks regenerating the paper's tables and figures; one benchmark
// (family) per table/figure. Absolute numbers are specific to this
// implementation — the reproduced content is the relative shape recorded
// in EXPERIMENTS.md. Run with: go test -bench . -benchmem
package dxml_test

import (
	"fmt"
	"strings"
	"testing"

	"dxml"
)

// --- Table 2: bottom-up consistency and typeT sizes ---

func table2Typing(m int, kind dxml.Kind) (*dxml.Kernel, dxml.Typing) {
	re2 := strings.TrimSuffix(strings.Repeat("(a|b) ", m), " ")
	k := dxml.MustParseKernel("s0(f1 f2)")
	ty := dxml.DTDTyping(
		dxml.MustParseDTD(kind, "root s1\ns1 -> (a|b)* a"),
		dxml.MustParseDTD(kind, "root s2\ns2 -> "+re2),
	)
	return k, ty
}

func BenchmarkTable2_ConsDTD_nFA(b *testing.B) {
	k, ty := table2Typing(6, dxml.KindNFA)
	var size int
	for i := 0; i < b.N; i++ {
		res, err := dxml.ConsDTD(k, ty, dxml.KindNFA)
		if err != nil || !res.Consistent {
			b.Fatal("inconsistent")
		}
		size = res.DTD.Size()
	}
	b.ReportMetric(float64(size), "typeT-size")
}

func BenchmarkTable2_ConsDTD_dFA(b *testing.B) {
	k, ty := table2Typing(6, dxml.KindDFA)
	var size int
	for i := 0; i < b.N; i++ {
		res, err := dxml.ConsDTD(k, ty, dxml.KindDFA)
		if err != nil || !res.Consistent {
			b.Fatal("inconsistent")
		}
		size = res.DTD.Size()
	}
	b.ReportMetric(float64(size), "typeT-size")
}

func BenchmarkTable2_ConsDTD_dRE(b *testing.B) {
	k := dxml.MustParseKernel("s0(a f1 c f2)")
	ty := dxml.DTDTyping(
		dxml.MustParseDTD(dxml.KindDRE, "root s1\ns1 -> b*"),
		dxml.MustParseDTD(dxml.KindDRE, "root s2\ns2 -> d*"),
	)
	for i := 0; i < b.N; i++ {
		res, err := dxml.ConsDTD(k, ty, dxml.KindDRE)
		if err != nil || !res.Consistent {
			b.Fatal("inconsistent")
		}
	}
}

func BenchmarkTable2_ConsSDTD(b *testing.B) {
	k := dxml.MustParseKernel("s0(f1 a(b f2) c)")
	ty := dxml.Typing{
		dxml.MustParseEDTD(dxml.KindNRE, "root s1\ns1 -> b1, d1+, a1*\na1 : a -> b1+\nb1 : b -> ε\nd1 : d -> ε"),
		dxml.MustParseEDTD(dxml.KindNRE, "root s2\ns2 -> b2*\nb2 : b -> ε"),
	}
	for i := 0; i < b.N; i++ {
		res, err := dxml.ConsSDTD(k, ty, dxml.KindNFA)
		if err != nil || !res.Consistent {
			b.Fatal("inconsistent")
		}
	}
}

func BenchmarkTable2_ConsEDTD(b *testing.B) {
	k, ty := table2Typing(6, dxml.KindNFA)
	for i := 0; i < b.N; i++ {
		if _, err := dxml.ConsEDTD(k, ty, dxml.KindNFA); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: top-down decision problems ---

func BenchmarkTable3_Loc_Words(b *testing.B) {
	d := dxml.MustWordDesign("(a b)+ (a b)+", "f1 f2")
	typing := dxml.MustWordTyping("(a b)+", "(a b)+")
	for i := 0; i < b.N; i++ {
		if !d.Local(typing) {
			b.Fatal("should be local")
		}
	}
}

func BenchmarkTable3_Ml_Words(b *testing.B) {
	typing := dxml.MustWordTyping("(a b)+", "(a b)+")
	for i := 0; i < b.N; i++ {
		d := dxml.MustWordDesign("(a b)+ (a b)+", "f1 f2")
		if _, err := d.MaximalLocal(typing); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_Perf_Words(b *testing.B) {
	typing := dxml.MustWordTyping("a*", "c*")
	for i := 0; i < b.N; i++ {
		d := dxml.MustWordDesign("a* b c*", "f1 b f2")
		if !d.IsPerfect(typing) {
			b.Fatal("should be perfect")
		}
	}
}

func BenchmarkTable3_ExistsPerfect_Words(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := dxml.MustWordDesign("a* b c*", "f1 b f2")
		if _, ok := d.PerfectTyping(); !ok {
			b.Fatal("should exist")
		}
	}
}

func BenchmarkTable3_ExistsMl_Words(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := dxml.MustWordDesign("(a b)+", "f1 f2")
		if ts := d.MaximalLocalTypings(); len(ts) != 3 {
			b.Fatalf("want 3 typings, got %d", len(ts))
		}
	}
}

func eurostatDTDBench() *dxml.DTDDesign {
	return &dxml.DTDDesign{
		Type: dxml.MustParseDTD(dxml.KindNRE, `
			root eurostat
			eurostat -> averages, nationalIndex*
			averages -> (Good, index+)+
			nationalIndex -> country, Good, (index | value, year)
			index -> value, year`),
		Kernel: dxml.MustParseKernel("eurostat(f0 f1 f2 f3)"),
	}
}

func tauPPDesign() *dxml.EDTDDesign {
	return &dxml.EDTDDesign{
		Type: dxml.MustParseEDTD(dxml.KindNRE, `
			root eurostat
			eurostat -> averages, (natIndA, natIndB)+
			averages -> (Good, index+)+
			natIndA : nationalIndex -> country, Good, index
			natIndB : nationalIndex -> country, Good, value, year
			index -> value, year`),
		Kernel: dxml.MustParseKernel("eurostat(f1 nationalIndex(f2) f3)"),
	}
}

func BenchmarkTable3_ExistsPerfect_DTD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := eurostatDTDBench()
		if _, ok := d.ExistsPerfect(); !ok {
			b.Fatal("should exist")
		}
	}
}

func BenchmarkTable3_ExistsMl_EDTD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := tauPPDesign()
		ts, err := d.MaximalLocalTypings()
		if err != nil || len(ts) != 2 {
			b.Fatalf("want 2 typings, got %d (err=%v)", len(ts), err)
		}
	}
}

func BenchmarkTable3_Loc_EDTD(b *testing.B) {
	d := tauPPDesign()
	ts, err := d.MaximalLocalTypings()
	if err != nil || len(ts) == 0 {
		b.Fatal("no typing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d2 := tauPPDesign()
		ok, err := d2.IsLocal(ts[0])
		if err != nil || !ok {
			b.Fatal("should be local")
		}
	}
}

// --- Figure 4/5: the Eurostat designs ---

func BenchmarkFig4_EurostatPerfectTyping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := eurostatDTDBench()
		if _, ok := d.ExistsPerfect(); !ok {
			b.Fatal("Figure 4 typing should exist")
		}
	}
}

func BenchmarkFig5_EurostatNoLocal(b *testing.B) {
	tauPrime := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, (natIndA* | natIndB*)
		averages -> (Good, index+)+
		natIndA -> country, Good, index
		natIndB -> country, Good, value, year
		index -> value, year`)
	for i := 0; i < b.N; i++ {
		d := &dxml.DTDDesign{Type: tauPrime, Kernel: dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")}
		if _, ok := d.ExistsLocal(); ok {
			b.Fatal("τ′ should have no local typing")
		}
	}
}

// --- Figure 7: the perfect-automaton construction (Lemma 6.6) ---

func BenchmarkFig7_PerfectAutomaton(b *testing.B) {
	re := ""
	k := 8
	for i := 0; i < k; i++ {
		re += fmt.Sprintf("a%d ", i)
	}
	target := "(" + strings.TrimSpace(re) + ")*"
	var states int
	for i := 0; i < b.N; i++ {
		d := dxml.MustWordDesign(target, "f1 f2")
		states = d.Perfect().OmegaNFA().NumStates()
	}
	b.ReportMetric(float64(states), "omega-states")
}

// --- Figure 8: the Dec cell decomposition ---

func BenchmarkFig8_Decomposition(b *testing.B) {
	autos := []*dxml.NFA{
		dxml.RegexNFA(dxml.MustParseRegex("a*")),
		dxml.RegexNFA(dxml.MustParseRegex("a+ b*")),
		dxml.RegexNFA(dxml.MustParseRegex("a a | a a a | b")),
		dxml.RegexNFA(dxml.MustParseRegex("(a|b)*")),
	}
	var cells int
	for i := 0; i < b.N; i++ {
		cells = len(dxml.DecomposeCells(autos))
	}
	b.ReportMetric(float64(cells), "cells")
}

// --- Distributed vs centralized validation (Remark 4) ---

func buildFederation(b *testing.B, indexes int) (*dxml.Network, *dxml.Network) {
	global := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`)
	kernel := dxml.MustParseKernel("eurostat(f0 f1 f2 f3)")
	design := &dxml.DTDDesign{Type: global, Kernel: kernel}
	typing, ok := design.ExistsPerfect()
	if !ok {
		b.Fatal("no typing")
	}
	mk := func() *dxml.Network {
		n := dxml.NewNetwork(kernel, global.ToEDTD())
		for i, f := range kernel.Funcs() {
			root := typing[i].Starts[0]
			var doc *dxml.Tree
			if i == 0 {
				doc = dxml.MustParseTree(root + "(averages(Good index(value year)))")
			} else {
				doc = dxml.MustParseTree(root + "()")
				for j := 0; j < indexes; j++ {
					doc.Children = append(doc.Children,
						dxml.MustParseTree("nationalIndex(country Good index(value year))"))
				}
			}
			if err := n.AddPeer(f, doc, typing[i]); err != nil {
				b.Fatal(err)
			}
		}
		return n
	}
	return mk(), mk()
}

func BenchmarkDistributedValidation(b *testing.B) {
	dist, _ := buildFederation(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := dist.ValidateDistributed()
		if err != nil || !ok {
			b.Fatal("should validate")
		}
	}
	_, bytes := dist.Stats.Snapshot()
	b.ReportMetric(float64(bytes)/float64(b.N), "wire-bytes/op")
}

func BenchmarkCentralizedValidation(b *testing.B) {
	_, cent := buildFederation(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := cent.ValidateCentralized()
		if err != nil || !ok {
			b.Fatal("should validate")
		}
	}
	_, bytes := cent.Stats.Snapshot()
	b.ReportMetric(float64(bytes)/float64(b.N), "wire-bytes/op")
}

// --- Tree vs stream validation (the streaming engine's workload) ---

// validationType is the eurostat global type used by the scaling
// benchmarks.
func validationType() *dxml.EDTD {
	return dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`).ToEDTD()
}

// validationDoc builds a valid eurostat document with approximately the
// requested number of nodes (each nationalIndex subtree adds 6).
func validationDoc(nodes int) *dxml.Tree {
	doc := dxml.MustParseTree("eurostat(averages(Good index(value year)))")
	ni := dxml.MustParseTree("nationalIndex(country Good index(value year))")
	for n := doc.Size(); n < nodes; n += 6 {
		doc.Children = append(doc.Children, ni.Clone())
	}
	return doc
}

var validationSizes = []int{1_000, 10_000, 100_000, 1_000_000}

// BenchmarkTreeValidation is the materialized baseline: the bottom-up
// tree validator over documents of 10^3–10^6 nodes.
func BenchmarkTreeValidation(b *testing.B) {
	e := validationType()
	for _, nodes := range validationSizes {
		b.Run(fmt.Sprintf("n=%d", nodes), func(b *testing.B) {
			doc := validationDoc(nodes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Validate(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamValidation drives the same documents through the
// compiled streaming machine (tree-walker front-end): one pass, memory
// proportional to depth, near-zero allocation.
func BenchmarkStreamValidation(b *testing.B) {
	m := dxml.CompileStream(validationType())
	for _, nodes := range validationSizes {
		b.Run(fmt.Sprintf("n=%d", nodes), func(b *testing.B) {
			doc := validationDoc(nodes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.ValidateTree(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamValidationXML validates straight off serialized XML
// bytes — the wire path of the p2p kernel peer and the CLI's stdin mode
// (the decoder, not the validator, dominates here).
func BenchmarkStreamValidationXML(b *testing.B) {
	m := dxml.CompileStream(validationType())
	for _, nodes := range validationSizes {
		b.Run(fmt.Sprintf("n=%d", nodes), func(b *testing.B) {
			src := validationDoc(nodes).XMLString()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.ValidateReader(strings.NewReader(src)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate benchmarks ---

func BenchmarkBuildDRE(b *testing.B) {
	nfa := dxml.RegexNFA(dxml.MustParseRegex("(a|b)* a"))
	for i := 0; i < b.N; i++ {
		if _, ok := dxml.BuildDRE(nfa); !ok {
			b.Fatal("should be one-unambiguous")
		}
	}
}

func BenchmarkEquivalentEDTD(b *testing.B) {
	x := dxml.MustParseEDTD(dxml.KindNRE, "root s\ns -> a1 | a2\na1 : a -> b\na2 : a -> c")
	y := dxml.MustParseEDTD(dxml.KindNRE, "root s\ns -> a3\na3 : a -> b | c")
	for i := 0; i < b.N; i++ {
		if ok, _ := dxml.EquivalentEDTD(x, y); !ok {
			b.Fatal("should be equivalent")
		}
	}
}

func BenchmarkValidateDTD(b *testing.B) {
	d := dxml.MustParseDTD(dxml.KindNRE, `
		root eurostat
		eurostat -> averages, nationalIndex*
		averages -> (Good, index+)+
		nationalIndex -> country, Good, (index | value, year)
		index -> value, year`)
	doc := dxml.MustParseTree("eurostat(averages(Good index(value year)))")
	for i := 0; i < 200; i++ {
		doc.Children = append(doc.Children,
			dxml.MustParseTree("nationalIndex(country Good value year)"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Validate(doc); err != nil {
			b.Fatal(err)
		}
	}
}
